"""The machine: cores, private L1s, banked NUCA LLC, coherence directory,
NoC, memory controllers and the active NUCA policy, driven by task traces.

This is the gem5/Ruby stand-in.  :meth:`Machine.run_task_trace` pushes a
task's block trace through the hierarchy:

L1 probe -> (RRT lookup under TD-NUCA) -> policy bank resolution ->
LLC bank access or bypass -> DRAM on miss -> fills, evictions, writebacks,
coherence invalidations -> latency, traffic and energy accounting.

Everything the paper's evaluation section measures falls out of this loop:
LLC accesses and hit ratios (Figs. 9/10), NUCA distances (Fig. 11), NoC
router-bytes (Fig. 12), LLC/NoC dynamic energy events (Figs. 13/14) and
the memory component of execution time (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.bank import BankStats
from repro.cache.directory import CoherenceDirectory
from repro.cache.l1 import L1Cache
from repro.cache.llc import NucaLLC
from repro.config import SystemConfig
from repro.core.isa import TdNucaISA
from repro.core.rrt import RRT
from repro.core.tdnuca import TdNucaPolicy
from repro.energy.model import EnergyBreakdown, EnergyTally
from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.invariants import InvariantChecker, InvariantViolation
from repro.faults.schedule import FaultSchedule, parse_fault_spec
from repro.mem.address import AddressMap
from repro.mem.pagetable import PageTable
from repro.mem.tlb import TLB, TLBStats
from repro.noc.topology import Mesh
from repro.noc.traffic import (
    CONTROL_BYTES,
    NUM_MESSAGE_CLASSES,
    MessageClass,
    TrafficStats,
    data_message_bytes,
)
from repro.nuca.base import BYPASS, FlushAction, NucaPolicy
from repro.nuca.dnuca import DNuca
from repro.nuca.rnuca import RNuca
from repro.nuca.snuca import SNuca
from repro.runtime.task import Task
from repro.runtime.trace import build_trace_cached, shared_trace_cache
from repro.sim.dram import MemoryControllers
from repro.sim.kernels import make_kernel
from repro.sim.latency import LatencyModel
from repro.stats.counters import BlockCensus

__all__ = ["Machine", "MachineStats", "build_machine", "POLICIES"]

# Dense MessageClass indices as plain ints for the batched accounting.
_REQUEST = int(MessageClass.REQUEST)
_DATA = int(MessageClass.DATA)
_WRITEBACK = int(MessageClass.WRITEBACK)
_INVALIDATION = int(MessageClass.INVALIDATION)
_ACK = int(MessageClass.ACK)
_DRAM_REQUEST = int(MessageClass.DRAM_REQUEST)
_DRAM_DATA = int(MessageClass.DRAM_DATA)

#: recognised policy names for :func:`build_machine`.
POLICIES = (
    "snuca",
    "rnuca",
    "dnuca",
    "tdnuca",
    "tdnuca-bypass-only",
    "tdnuca-noisa",
)


@dataclass
class MachineStats:
    """Post-run snapshot of everything the figures consume."""

    policy: str
    llc: BankStats
    l1: BankStats
    traffic: TrafficStats
    energy: EnergyBreakdown
    tlb: TLBStats
    dram_reads: int
    dram_writes: int
    llc_accesses: int = 0
    llc_hit_ratio: float = 0.0
    mean_nuca_distance: float = 0.0
    router_bytes: int = 0
    bypassed_accesses: int = 0
    #: degraded-mode accounting; ``None`` when no fault schedule attached.
    faults: FaultStats | None = None
    extra: dict = field(default_factory=dict)


class Machine:
    """One simulated 16-core tiled CMP with a pluggable NUCA policy."""

    def __init__(
        self,
        cfg: SystemConfig,
        policy: NucaPolicy,
        *,
        fragmentation: float = 0.03,
        seed: int = 0,
        census: bool = True,
        isa: TdNucaISA | None = None,
        rrts: list[RRT] | None = None,
    ) -> None:
        cfg.validate()
        self.cfg = cfg
        self.amap = AddressMap(
            cfg.block_bytes, cfg.page_bytes, cfg.physical_address_bits
        )
        self.mesh = Mesh(
            cfg.mesh_width, cfg.mesh_height, cfg.cluster_width, cfg.cluster_height
        )
        self.pagetable = PageTable(self.amap, fragmentation, seed)
        self.tlbs = [
            TLB(self.pagetable, cfg.tlb_entries) for _ in range(cfg.num_cores)
        ]
        self.l1s = [
            L1Cache(c, cfg.l1_bytes, cfg.l1_assoc, cfg.block_bytes)
            for c in range(cfg.num_cores)
        ]
        self.llc = NucaLLC(
            cfg.num_banks, cfg.llc_bank_bytes, cfg.llc_assoc, cfg.block_bytes
        )
        self.directory = CoherenceDirectory(cfg.num_cores)
        self.dram = MemoryControllers(self.mesh, cfg.latency)
        self.traffic = TrafficStats(cfg.energy.flit_bytes)
        self.energy = EnergyTally()
        self.latency = LatencyModel(cfg.latency)
        self.policy = policy
        # Simulation kernel: the strategy executing each task's trace.
        # ``REPRO_KERNEL`` overrides the configured selector; ``auto``
        # resolves to the vector backend when numpy is usable.
        self.kernel = make_kernel(getattr(cfg, "kernel", "auto"))
        self.census = BlockCensus(cfg.num_cores) if census else None
        self.isa = isa
        self.rrts = rrts
        self._dnuca = policy if isinstance(policy, DNuca) else None
        if isa is not None:
            isa.flush_executor = self._execute_flush
        self._data_bytes = data_message_bytes(cfg.block_bytes)
        self._page_block_shift = self.amap.page_shift - self.amap.block_shift
        # Precomputed flit counts: every message in the simulator is either
        # a control message or a whole-block data message, so the hot loop
        # never performs a ceil-division.
        self._flit_bytes = cfg.energy.flit_bytes
        self._ctrl_flits = -(-CONTROL_BYTES // self._flit_bytes)
        self._data_flits = -(-self._data_bytes // self._flit_bytes)
        #: memoized task traces (task-dataflow programs re-run the same
        #: kernel shapes many times).  The process-wide LRU is keyed by
        #: address-map geometry + task signature, so machines in a sweep
        #: — and both backends under the verify kernel — share traces.
        self._trace_cache = shared_trace_cache
        # Pending traffic batch: the per-reference loop and the coherence
        # helpers accumulate message deltas here; they are validated and
        # drained into :attr:`traffic` once per task (see _flush_traffic).
        self._reset_pending()
        # Fault injection / strict checking (idle unless configured).
        self.tasks_completed = 0
        self.fault_injector: FaultInjector | None = None
        # Observability hook (repro.obs.Observer.attach plants it); None
        # keeps every traced code path a single attribute test, so runs
        # with tracing off stay byte-identical to the golden snapshots.
        self.obs = None
        self.invariant_checker = (
            InvariantChecker(cfg.strict_check_interval)
            if cfg.strict_invariants
            else None
        )
        self._dead_banks: set[int] = set()
        self._alive_banks: list[int] = list(range(cfg.num_banks))
        # Per-core runtime/stack scratch regions (non-dependency traffic).
        # Placed at the top of the virtual address space so they can never
        # alias workload allocations (which grow upward from 0x1000).
        scratch_base = 1 << 40
        stride = max(cfg.page_bytes, cfg.nondep_blocks_per_task * cfg.block_bytes)
        self._scratch_vblocks = []
        for c in range(cfg.num_cores):
            start = (scratch_base + c * stride) >> self.amap.block_shift
            self._scratch_vblocks.append(
                np.arange(start, start + cfg.nondep_blocks_per_task, dtype=np.int64)
            )
        # Write-flag arrays for the scratch sweeps, built once instead of
        # per task.  np.concatenate copies, so sharing them is safe.
        self._scratch_read_flags = np.zeros(cfg.nondep_blocks_per_task, dtype=bool)
        self._scratch_write_flags = np.ones(cfg.nondep_blocks_per_task, dtype=bool)

    @property
    def num_cores(self) -> int:
        return self.cfg.num_cores

    # ------------------------------------------------------------------
    # batched traffic accounting
    # ------------------------------------------------------------------

    def _reset_pending(self) -> None:
        """Zero the pending traffic batch (dropping anything unflushed)."""
        self._acc_router_bytes = 0
        self._acc_flit_hops = 0
        self._acc_messages = 0
        self._acc_class_bytes = [0] * NUM_MESSAGE_CLASSES
        self._acc_nuca_sum = 0
        self._acc_nuca_count = 0

    def _record(self, msg_class: int, size_bytes: int, hop_count: int) -> None:
        """Accumulate one message into the pending batch.

        This is the coherence/flush helpers' counterpart of
        :meth:`TrafficStats.record_message`; range validation happens once
        per batch in :meth:`TrafficStats.add_batch` instead of here.
        """
        routers = hop_count + 1
        self._acc_router_bytes += size_bytes * routers
        self._acc_flit_hops += -(-size_bytes // self._flit_bytes) * routers
        self._acc_messages += 1
        self._acc_class_bytes[msg_class] += size_bytes

    def _flush_traffic(self) -> None:
        """Drain the pending batch into :attr:`traffic` (validated there)."""
        if self._acc_messages or self._acc_nuca_count:
            self.traffic.add_batch(
                self._acc_router_bytes,
                self._acc_flit_hops,
                self._acc_messages,
                self._acc_class_bytes,
                self._acc_nuca_sum,
                self._acc_nuca_count,
            )
            self._reset_pending()

    # ------------------------------------------------------------------
    # trace execution (the hot path)
    # ------------------------------------------------------------------

    def run_task_trace(self, core: int, task: Task) -> int:
        """Apply ``task``'s memory trace issued from ``core``; returns the
        memory + per-access compute cycles it took."""
        trace = build_trace_cached(task, self.amap, self._trace_cache)
        vblocks, writes = trace.vblocks, trace.writes
        scratch = self._scratch_vblocks[core]
        if len(scratch):
            # Runtime/stack traffic: one read and one write sweep per task.
            vblocks = np.concatenate([scratch, vblocks, scratch])
            writes = np.concatenate(
                [self._scratch_read_flags, writes, self._scratch_write_flags]
            )
        if len(vblocks) == 0:
            self._task_boundary(core)
            return 0
        if self.census is not None:
            self.census.record(core, vblocks, writes)
        pblocks = self.pagetable.translate_blocks(vblocks)

        # Batch OS page classification (R-NUCA); reads before writes.
        pages = pblocks >> self._page_block_shift
        uniq_pages, inverse = np.unique(pages, return_inverse=True)
        wrote = np.zeros(len(uniq_pages), dtype=bool)
        np.logical_or.at(wrote, inverse, writes)
        for action in self.policy.classify_pages(core, uniq_pages.tolist(), wrote.tolist()):
            self._apply_flush_action(action)

        cycles = self._run_blocks(core, pblocks, writes, task.compute_per_access)
        self._task_boundary(core)
        return cycles

    def _task_boundary(self, core: int = -1) -> None:
        """One task's trace finished: fire due faults, then (strict mode)
        check invariants against the now-quiescent hierarchy, then let the
        observer attribute the task's bank deltas and sample its timeline."""
        self._flush_traffic()
        self.tasks_completed += 1
        if self.fault_injector is not None:
            self.fault_injector.on_task_boundary(self.tasks_completed)
        if self.invariant_checker is not None:
            self.invariant_checker.on_task_boundary(self, self.tasks_completed)
        if self.obs is not None:
            self.obs.on_task_boundary(self, core)

    def _run_blocks(
        self,
        core: int,
        pblocks: np.ndarray,
        writes: np.ndarray,
        compute_per_access: int | None = None,
    ) -> int:
        """Execute one task's translated trace via the active kernel.

        The per-reference interpreter lives in
        :mod:`repro.sim.kernels.reference`; the batched numpy backend in
        :mod:`repro.sim.kernels.vector`.  Both must produce byte-identical
        machine state (the golden snapshots are the gate)."""
        return self.kernel.run_blocks(
            self, core, pblocks, writes, compute_per_access
        )

    # ------------------------------------------------------------------
    # fault injection (graceful degradation)
    # ------------------------------------------------------------------

    def attach_faults(self, schedule: FaultSchedule, seed: int = 0) -> FaultInjector:
        """Install a fault schedule; fires any ``at_task=0`` events now."""
        if self.fault_injector is not None:
            raise RuntimeError("a fault schedule is already attached")
        injector = FaultInjector(self, schedule, seed)
        self.fault_injector = injector
        injector.activate()
        return injector

    def fail_bank(self, bank: int) -> dict[str, int]:
        """Hard-fail one LLC bank: its contents are lost, the policy remaps
        future accesses to surviving banks, orphaned L1 copies are
        back-invalidated (dirty ones drain to DRAM — the L1s still work)
        and TD-NUCA RRT entries naming the bank are invalidated.  Returns
        the loss accounting for :class:`repro.faults.injector.FaultStats`."""
        victims = self.llc.banks[bank].resident_items()
        self.llc.kill_bank(bank)
        self.policy.disable_bank(bank)
        self._dead_banks.add(bank)
        self._alive_banks = [
            b for b in range(self.cfg.num_banks) if b not in self._dead_banks
        ]
        l1_dropped = 0
        for block, _dirty in victims:
            if self.llc.any_bank_holds(block):
                continue  # a replica in a live bank preserves inclusion
            for core in self.directory.drop_block(block):
                present, was_dirty = self.l1s[core].invalidate(block)
                if not present:
                    continue
                l1_dropped += 1
                if was_dirty:
                    mc, _ = self.dram.write(block)
                    self._record(
                        _WRITEBACK, self._data_bytes, self.mesh.dist_rows[core][mc]
                    )
                    self.energy.dram_accesses += 1
        rrt_dropped = 0
        if self.rrts is not None:
            for rrt in self.rrts:
                rrt_dropped += rrt.drop_bank_entries(bank)
        report = {
            "blocks_lost": len(victims),
            "dirty_blocks_lost": sum(1 for _, d in victims if d),
            "l1_copies_dropped": l1_dropped,
            "rrt_entries_dropped": rrt_dropped,
        }
        if self.obs is not None:
            self.obs.nuca_remap(bank, report)
        return report

    def fail_link(self, a: int, b: int) -> None:
        """Hard-fail one NoC link; the mesh recomputes all distances over
        the surviving links (fault-aware fallback routing)."""
        self.mesh.fail_link(a, b)

    def _home_bank(self, block: int) -> int:
        """Static home bank for coherence traffic, remapped around dead
        banks the same way the policies remap (block-interleaved over the
        survivors)."""
        bank = block % self.cfg.num_banks
        if self._dead_banks and bank in self._dead_banks:
            alive = self._alive_banks
            bank = alive[block % len(alive)]
        return bank

    def check_invariants(self) -> list[InvariantViolation]:
        """Full machine-wide invariant sweep; [] means consistent."""
        from repro.faults.invariants import check_machine

        self._flush_traffic()
        return check_machine(self)

    # ------------------------------------------------------------------
    # coherence and writeback helpers
    # ------------------------------------------------------------------

    def _write_hit_coherence(self, core: int, block: int) -> None:
        """Upgrade on an L1 write hit: invalidate remote sharers."""
        directory = self.directory
        mask = directory.sharer_mask(block)
        bit = 1 << core
        if mask & ~bit:
            actions = directory.on_l1_fill(core, block, True)
            bank = self._home_bank(block)  # upgrade goes to home bank
            self._coherence_actions(core, block, bank, actions)
        elif directory.owner(block) != core:
            # Silent E->M (or stale-presence) upgrade: just take ownership.
            directory.on_l1_fill(core, block, True)

    def _coherence_actions(self, core: int, block: int, bank: int, actions) -> int:
        """Perform invalidations/downgrades; returns added cycles."""
        home = bank if bank != BYPASS else self._home_bank(block)
        dist_home = self.mesh.dist_rows[home]
        per_hop = self.latency.per_hop
        cycles = 0
        for victim_core in actions.invalidate:
            hops = dist_home[victim_core]
            self._record(_INVALIDATION, CONTROL_BYTES, hops)
            self._record(_ACK, CONTROL_BYTES, hops)
            present, dirty = self.l1s[victim_core].invalidate(block)
            if present and dirty and victim_core != actions.writeback_from:
                self._writeback_to_llc(victim_core, block, home)
            cycles = max(cycles, 2 * hops * per_hop)
        wb = actions.writeback_from
        if wb is not None and wb not in actions.invalidate:
            # Downgrade: owner supplies data and keeps a clean copy.
            self.l1s[wb].make_clean(block)
            self._writeback_to_llc(wb, block, home)
            cycles = max(cycles, 2 * dist_home[wb] * per_hop)
        elif wb is not None:
            self._writeback_to_llc(wb, block, home)
        return cycles

    def _writeback_to_llc(self, core: int, block: int, bank: int) -> None:
        """Dirty data moves from ``core``'s L1 into ``bank``."""
        self._record(_WRITEBACK, self._data_bytes, self.mesh.dist_rows[core][bank])
        llc = self.llc
        if llc._dead and bank in llc._dead:
            raise RuntimeError(
                f"access routed to dead LLC bank {bank}; policy remap failed"
            )
        energy = self.energy
        energy.llc_tag_probes += 1
        energy.llc_data_writes += 1  # hit-write and miss-fill both write data
        bank_obj = llc.banks[bank]
        if not bank_obj.probe(block, True):
            evicted, evicted_dirty = bank_obj.fill_demand(block, True)
            if evicted >= 0:
                self._llc_eviction(bank, evicted, evicted_dirty)

    def _migrate_block(self, migration) -> None:
        """D-NUCA gradual migration: move the block one bank over."""
        present, dirty = self.llc.banks[migration.src_bank].invalidate(
            migration.block
        )
        if not present:
            return
        self._record(
            _DATA,
            self._data_bytes,
            self.mesh.dist_rows[migration.src_bank][migration.dst_bank],
        )
        energy = self.energy
        energy.llc_data_reads += 1  # victim read out at the source bank
        res = self.llc.banks[migration.dst_bank].fill(migration.block, dirty)
        energy.llc_tag_probes += 1
        energy.llc_data_writes += 1  # fill at the destination
        if res.evicted is not None:
            if self._dnuca is not None:
                self._dnuca.evicted(res.evicted)
            self._llc_eviction(migration.dst_bank, res.evicted, res.evicted_dirty)

    def _llc_eviction(self, bank: int, victim: int, dirty: bool) -> None:
        """An LLC fill displaced ``victim``: write back if dirty and
        back-invalidate L1 copies (the LLC is inclusive)."""
        if self._dnuca is not None:
            self._dnuca.evicted(victim)
        dist_bank = self.mesh.dist_rows[bank]
        data_bytes = self._data_bytes
        data_flits = self._data_flits
        acc_cb = self._acc_class_bytes
        if dirty:
            self.energy.llc_data_reads += 1  # victim read out for writeback
            mc, _ = self.dram.write(victim)
            # _record(_WRITEBACK, ...) inlined (LLC fills evict constantly).
            routers = dist_bank[mc] + 1
            self._acc_router_bytes += data_bytes * routers
            self._acc_flit_hops += data_flits * routers
            self._acc_messages += 1
            acc_cb[_WRITEBACK] += data_bytes
            self.energy.dram_accesses += 1
        # Inclusive LLC: if no other bank holds a replica, L1 copies must go.
        if not self.llc.any_bank_holds(victim):
            ctrl_flits = self._ctrl_flits
            for core in self.directory.drop_block(victim):
                routers = dist_bank[core] + 1
                self._acc_router_bytes += 2 * CONTROL_BYTES * routers
                self._acc_flit_hops += 2 * ctrl_flits * routers
                self._acc_messages += 2
                acc_cb[_INVALIDATION] += CONTROL_BYTES
                acc_cb[_ACK] += CONTROL_BYTES
                present, was_dirty = self.l1s[core].invalidate(victim)
                if present and was_dirty:
                    mc, _ = self.dram.write(victim)
                    routers = self.mesh.dist_rows[core][mc] + 1
                    self._acc_router_bytes += data_bytes * routers
                    self._acc_flit_hops += data_flits * routers
                    self._acc_messages += 1
                    acc_cb[_WRITEBACK] += data_bytes
                    self.energy.dram_accesses += 1

    # ------------------------------------------------------------------
    # flush execution (tdnuca_flush and R-NUCA reclassification)
    # ------------------------------------------------------------------

    def _apply_flush_action(self, action: FlushAction) -> None:
        """R-NUCA reclassification flush."""
        blocks = list(action.blocks)
        if action.llc_banks:
            self._flush_llc(blocks, action.llc_banks)
        if action.l1_cores:
            self._flush_l1(blocks, action.l1_cores)

    def _execute_flush(
        self, blocks: list[int], level: str, tiles: tuple[int, ...]
    ) -> tuple[int, int]:
        """Installed as the TD-NUCA ISA flush executor."""
        if level == "l1":
            return self._flush_l1(blocks, tiles)
        return self._flush_llc(blocks, tiles)

    def _flush_l1(self, blocks: list[int], cores) -> tuple[int, int]:
        """Flush ``blocks`` from the named cores' L1s through the uniform
        flush accounting (``flushed_blocks``), like every other flush."""
        obs = self.obs
        if obs is not None:
            obs.flush_begin("l1", cores, len(blocks))
        flushed = dirty_total = 0
        directory = self.directory
        for core in cores:
            removed = self.l1s[core].flush_blocks_collect(blocks)
            flushed += len(removed)
            dist_core = self.mesh.dist_rows[core]
            for block, dirty in removed:
                directory.on_l1_evict(core, block, dirty)
                if dirty:
                    dirty_total += 1
                    mc, _ = self.dram.write(block)
                    self._record(_WRITEBACK, self._data_bytes, dist_core[mc])
                    self.energy.dram_accesses += 1
        if obs is not None:
            obs.flush_end("l1", flushed, dirty_total)
        return flushed, dirty_total

    def _flush_llc(self, blocks: list[int], banks) -> tuple[int, int]:
        obs = self.obs
        if obs is not None:
            obs.flush_begin("llc", banks, len(blocks))
        flushed = dirty_total = 0
        for bank in banks:
            bank_obj = self.llc.banks[bank]
            self.energy.llc_probe(len(blocks))
            removed = bank_obj.flush_blocks_collect(blocks)
            flushed += len(removed)
            dist_bank = self.mesh.dist_rows[bank]
            for block, dirty in removed:
                if dirty:
                    dirty_total += 1
                    self.energy.llc_victim_read()
                    mc, _ = self.dram.write(block)
                    self._record(_WRITEBACK, self._data_bytes, dist_bank[mc])
                    self.energy.dram_accesses += 1
        if obs is not None:
            obs.flush_end("llc", flushed, dirty_total)
        return flushed, dirty_total

    # ------------------------------------------------------------------
    # stats reset (post-warmup measurement window)
    # ------------------------------------------------------------------

    def reset_stats(self) -> None:
        """Zero all counters while keeping cache contents, page mappings
        and OS/RRT classification state — the paper measures only the
        post-initialisation execution phase."""
        from repro.cache.bank import BankStats
        from repro.cache.directory import DirectoryStats
        from repro.core.rrt import RRTStats
        from repro.mem.tlb import TLBStats
        from repro.nuca.base import PolicyStats
        from repro.sim.dram import DramStats

        for l1 in self.l1s:
            l1.stats = BankStats()
        for bank in self.llc.banks:
            bank.stats = BankStats()
        for tlb in self.tlbs:
            tlb.stats = TLBStats()
        self.directory.stats = DirectoryStats()
        self.dram.stats = DramStats()
        self.traffic = TrafficStats(self.cfg.energy.flit_bytes)
        self._reset_pending()  # unflushed warmup deltas die with the window
        self.energy = EnergyTally()
        self.policy.stats = PolicyStats()
        if self.census is not None:
            self.census = BlockCensus(self.cfg.num_cores)
        if self.rrts is not None:
            for rrt in self.rrts:
                rrt.stats = RRTStats()
        if self.isa is not None:
            from repro.core.isa import ISAStats

            self.isa.stats = ISAStats()
        if self.obs is not None:
            # The observer's trace and baselines restart with the counters
            # so the exported window matches the measured one.
            self.obs.on_stats_reset(self)

    # ------------------------------------------------------------------
    # stats snapshot
    # ------------------------------------------------------------------

    def collect_stats(self) -> MachineStats:
        self._flush_traffic()
        llc = self.llc.aggregate_stats()
        l1 = BankStats()
        for cache in self.l1s:
            l1.merge(cache.stats)
        tlb = TLBStats()
        for t in self.tlbs:
            tlb.merge(t.stats)
        energy = self.energy.breakdown(self.cfg.energy, self.traffic.flit_hops)
        extra: dict = {}
        if self.invariant_checker is not None:
            # Final sweep so even a run shorter than the check interval
            # ends with at least one full consistency proof.
            self.invariant_checker.full_sweep(self)
            extra["invariants"] = {
                "checks_run": self.invariant_checker.checks_run,
                "full_sweeps": self.invariant_checker.full_sweeps,
                "violations": self.invariant_checker.violations_found,
            }
        faults = (
            self.fault_injector.snapshot()
            if self.fault_injector is not None
            else None
        )
        return MachineStats(
            policy=self.policy.name,
            llc=llc,
            l1=l1,
            traffic=self.traffic,
            energy=energy,
            tlb=tlb,
            dram_reads=self.dram.stats.reads,
            dram_writes=self.dram.stats.writes,
            llc_accesses=llc.accesses,
            llc_hit_ratio=llc.hit_ratio,
            mean_nuca_distance=self.traffic.mean_nuca_distance,
            router_bytes=self.traffic.router_bytes,
            bypassed_accesses=self.policy.stats.bypasses,
            faults=faults,
            extra=extra,
        )

    # ------------------------------------------------------------------
    # checkpoint/restore
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """Full mutable state at a task boundary.

        Must only be called with the machine quiescent: every task
        boundary flushes the pending traffic batch, so unflushed deltas
        here mean the caller is mid-trace.  Static structure (geometry,
        latency tables, scratch arrays, trace memoization) is rebuilt by
        :func:`build_machine` and is not stored.
        """
        from dataclasses import asdict

        if self._acc_messages or self._acc_nuca_count:
            raise RuntimeError("cannot snapshot with unflushed traffic deltas")
        # tdnuca-noisa machines keep their RRTs only on the ISA
        # (machine.rrts stays None); the TD-NUCA variants share one list.
        rrts = self.isa.rrts if self.isa is not None else self.rrts
        return {
            "tasks_completed": self.tasks_completed,
            "pagetable": self.pagetable.state_dict(),
            "tlbs": [t.state_dict() for t in self.tlbs],
            "l1s": [l1.state_dict() for l1 in self.l1s],
            "llc": self.llc.state_dict(),
            "directory": self.directory.state_dict(),
            "dram": self.dram.state_dict(),
            "traffic": self.traffic.state_dict(),
            "energy": asdict(self.energy),
            "policy": self.policy.state_dict(),
            "census": self.census.state_dict() if self.census is not None else None,
            "rrts": [r.state_dict() for r in rrts] if rrts is not None else None,
            "isa": self.isa.state_dict() if self.isa is not None else None,
            "mesh": self.mesh.state_dict(),
            "dead_banks": sorted(self._dead_banks),
            "fault_injector": (
                self.fault_injector.state_dict()
                if self.fault_injector is not None
                else None
            ),
            "invariant_checker": (
                self.invariant_checker.state_dict()
                if self.invariant_checker is not None
                else None
            ),
            "obs": self.obs.state_dict() if self.obs is not None else None,
        }

    @staticmethod
    def _require_matching(name: str, have: bool, stored: bool) -> None:
        if have != stored:
            raise ValueError(
                f"snapshot/machine mismatch: {name} is "
                f"{'present' if stored else 'absent'} in the snapshot but "
                f"{'present' if have else 'absent'} on this machine"
            )

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot into a freshly built machine.

        The machine must have been built with the same config, policy and
        seed as the snapshotted one (the snapshot file layer verifies
        that); any ``at_task<=0`` fault effects applied during
        construction are overwritten here, and the injector cursor and
        RNG are restored last so the continuation replays the same
        schedule from the same point.
        """
        self.tasks_completed = int(state["tasks_completed"])
        self.pagetable.load_state_dict(state["pagetable"])
        for name, mine, stored in (
            ("tlbs", self.tlbs, state["tlbs"]),
            ("l1s", self.l1s, state["l1s"]),
        ):
            if len(mine) != len(stored):
                raise ValueError(f"snapshot {name} count mismatch")
            for obj, s in zip(mine, stored):
                obj.load_state_dict(s)
        self.llc.load_state_dict(state["llc"])
        self.directory.load_state_dict(state["directory"])
        self.dram.load_state_dict(state["dram"])
        self.traffic.load_state_dict(state["traffic"])
        self._reset_pending()
        self.energy = EnergyTally(**state["energy"])
        self.policy.load_state_dict(state["policy"])
        self._require_matching("census", self.census is not None,
                               state["census"] is not None)
        if self.census is not None:
            self.census.load_state_dict(state["census"])
        rrts = self.isa.rrts if self.isa is not None else self.rrts
        self._require_matching("rrts", rrts is not None,
                               state["rrts"] is not None)
        if rrts is not None:
            if len(rrts) != len(state["rrts"]):
                raise ValueError("snapshot rrts count mismatch")
            for rrt, s in zip(rrts, state["rrts"]):
                rrt.load_state_dict(s)
        self._require_matching("isa", self.isa is not None,
                               state["isa"] is not None)
        if self.isa is not None:
            self.isa.load_state_dict(state["isa"])
        self.mesh.load_state_dict(state["mesh"])
        self._dead_banks = {int(b) for b in state["dead_banks"]}
        self._alive_banks = [
            b for b in range(self.cfg.num_banks) if b not in self._dead_banks
        ]
        self._require_matching("fault injector", self.fault_injector is not None,
                               state["fault_injector"] is not None)
        if self.fault_injector is not None:
            self.fault_injector.load_state_dict(state["fault_injector"])
        self._require_matching("invariant checker",
                               self.invariant_checker is not None,
                               state["invariant_checker"] is not None)
        if self.invariant_checker is not None:
            self.invariant_checker.load_state_dict(state["invariant_checker"])
        # Tracing configuration may legitimately differ between the
        # snapshotting run and the resuming one: observer state is
        # restored when both sides trace, dropped otherwise (it never
        # feeds MachineStats, so byte-identity is unaffected).
        if self.obs is not None and state["obs"] is not None:
            self.obs.load_state_dict(state["obs"])


def _finalize_machine(machine: Machine, cfg: SystemConfig, seed: int) -> Machine:
    """Attach the configured fault schedule (if any) to a fresh machine."""
    if cfg.fault_spec:
        machine.attach_faults(parse_fault_spec(cfg.fault_spec), seed)
    return machine


def build_machine(
    cfg: SystemConfig,
    policy: str = "snuca",
    *,
    rrt_lookup_cycles: int | None = None,
    fragmentation: float = 0.03,
    seed: int = 0,
    census: bool = True,
) -> Machine:
    """Construct a machine running one of :data:`POLICIES`.

    ``tdnuca-bypass-only`` and ``tdnuca-noisa`` build the same hardware as
    ``tdnuca``; the behavioural difference lives in the runtime extension
    (see :func:`repro.experiments.runner.build_runtime`).
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")
    cfg.validate()
    amap = AddressMap(cfg.block_bytes, cfg.page_bytes, cfg.physical_address_bits)
    mesh = Mesh(cfg.mesh_width, cfg.mesh_height, cfg.cluster_width, cfg.cluster_height)
    if policy == "snuca":
        machine = Machine(
            cfg, SNuca(cfg.num_banks), fragmentation=fragmentation, seed=seed,
            census=census,
        )
        return _finalize_machine(machine, cfg, seed)
    if policy == "rnuca":
        machine = Machine(
            cfg, RNuca(mesh, amap), fragmentation=fragmentation, seed=seed,
            census=census,
        )
        return _finalize_machine(machine, cfg, seed)
    if policy == "dnuca":
        machine = Machine(
            cfg, DNuca(mesh), fragmentation=fragmentation, seed=seed,
            census=census,
        )
        return _finalize_machine(machine, cfg, seed)
    if policy == "tdnuca-noisa":
        # Section V-E runtime-overhead experiment: the runtime extension
        # runs all its bookkeeping but never executes the ISA instructions,
        # so the hardware is plain S-NUCA (no RRT latency on misses).  The
        # RRT/ISA objects exist only so the extension has something to
        # sample; they stay empty.
        machine = Machine(
            cfg, SNuca(cfg.num_banks), fragmentation=fragmentation, seed=seed,
            census=census,
        )
        rrts = [RRT(c, cfg.rrt_entries) for c in range(cfg.num_cores)]
        machine.isa = TdNucaISA(machine.amap, machine.tlbs, rrts, cfg.latency)
        machine.isa.flush_executor = machine._execute_flush
        return _finalize_machine(machine, cfg, seed)
    # TD-NUCA variants share the RRT/ISA hardware.
    rrts = [RRT(c, cfg.rrt_entries) for c in range(cfg.num_cores)]
    lookup = (
        cfg.latency.rrt_lookup if rrt_lookup_cycles is None else rrt_lookup_cycles
    )
    td_policy = TdNucaPolicy(mesh, amap, rrts, lookup)
    machine = Machine(
        cfg,
        td_policy,
        fragmentation=fragmentation,
        seed=seed,
        census=census,
        rrts=rrts,
    )
    isa = TdNucaISA(machine.amap, machine.tlbs, rrts, cfg.latency)
    machine.isa = isa
    isa.flush_executor = machine._execute_flush
    return _finalize_machine(machine, cfg, seed)
