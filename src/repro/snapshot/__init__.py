"""Preemptible simulation: task-boundary checkpoint/restore.

``save_snapshot``/``load_snapshot`` are the file-level API; the
:class:`~repro.snapshot.checkpoint.Checkpointer` drives periodic and
signal-triggered snapshots from inside the executor's dispatch loop; and
``repro.api._run_one(checkpoint=..., resume_from=...)`` is the run-level
entry point that validates, restores, and continues a preempted run with
byte-identical final statistics.  See DESIGN.md §10 for the format and
the identity guarantee.
"""

from repro.snapshot.checkpoint import (
    EXIT_PREEMPTED,
    Checkpointer,
    PreemptedError,
    build_payload,
)
from repro.snapshot.format import (
    FORMAT_VERSION,
    MAGIC,
    CorruptSnapshotError,
    SnapshotMismatchError,
    config_sha256,
    load_or_quarantine,
    read_snapshot_file,
    verify_meta,
    write_snapshot_file,
)

__all__ = [
    "EXIT_PREEMPTED",
    "FORMAT_VERSION",
    "MAGIC",
    "Checkpointer",
    "CorruptSnapshotError",
    "PreemptedError",
    "SnapshotMismatchError",
    "build_payload",
    "config_sha256",
    "load_or_quarantine",
    "load_snapshot",
    "read_snapshot_file",
    "save_snapshot",
    "verify_meta",
    "write_snapshot_file",
]

#: aliases matching the names used in the design docs: a snapshot is
#: saved from an executor (via its checkpointer) and loaded as a payload.
save_snapshot = write_snapshot_file
load_snapshot = read_snapshot_file
