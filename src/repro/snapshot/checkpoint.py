"""Task-boundary checkpointing and the preemption protocol.

The simulator's event loop is deterministic, so a snapshot does not need
to serialize the in-flight event heap: it captures (a) the machine's full
architectural state at a task boundary via ``Machine.state_dict()`` and
(b) a *positional journal* of the in-progress phase — the per-task
creation costs and the duration of every dispatch so far.  Resume rebuilds
the task graph and event heap by replaying the journal (no machine work,
no stats updates), then continues live from the exact dispatch the
snapshot was taken at.  Because every replayed quantity is recorded rather
than recomputed, and the machine state is restored byte-for-byte, the
resumed run's final statistics are byte-identical to an uninterrupted run
(asserted over all golden configurations in CI).

Snapshots are only taken at dispatch boundaries, where the machine is
quiescent: the last task's traffic batch has been flushed, the TD-NUCA
runtime has no tasks in flight, and no NoC messages are pending.  The
:class:`Checkpointer` hangs off ``Executor.checkpointer`` and is a single
``is not None`` test per dispatch on the untraced path, so it cannot
disturb ``scripts/perf_smoke.py``'s call-count ceiling.

Triggers:

* ``every=N``     — write a checkpoint every N live dispatches, keep going.
* ``deadline``    — absolute ``time.monotonic()`` value; first dispatch at
  or past it checkpoints and raises :class:`PreemptedError`.
* ``request_preempt()`` — called from a SIGTERM/SIGINT handler; the next
  dispatch boundary checkpoints and raises.
* ``preempt_after_tasks=K`` — deterministic trigger used by tests and the
  preemption smoke script: preempt after exactly K live dispatches
  (counted across warmup and main segments).

A preempted process exits with :data:`EXIT_PREEMPTED` (75, the sysexits
``EX_TEMPFAIL``: "try again later" — which is exactly what resume does).
"""

from __future__ import annotations

import time
from dataclasses import asdict
from pathlib import Path

from repro.snapshot.format import write_snapshot_file

__all__ = ["Checkpointer", "PreemptedError", "EXIT_PREEMPTED", "build_payload"]

#: process exit code for "checkpointed and stopped; resume me" (EX_TEMPFAIL).
EXIT_PREEMPTED = 75


class PreemptedError(Exception):
    """The run was preempted after writing a snapshot.

    ``path`` is the snapshot file; ``tasks_completed`` is the machine's
    cumulative task count at the checkpoint (surfaced to job records as
    ``resumed_from_task`` when the run is later resumed).
    """

    def __init__(self, path: Path, tasks_completed: int) -> None:
        super().__init__(
            f"preempted after {tasks_completed} tasks; snapshot at {path}"
        )
        self.path = Path(path)
        self.tasks_completed = tasks_completed


def _scheduler_rng_state(scheduler):
    """Serializable RNG state of a seeded scheduler (None if stateless)."""
    rng = getattr(scheduler, "_rng", None)
    if rng is None:
        return None
    return rng.bit_generator.state


def build_payload(executor, checkpointer) -> dict:
    """Assemble the full snapshot payload for ``executor`` right now.

    Must be called at a dispatch boundary (``Machine.state_dict`` raises
    if traffic deltas are pending; ``TdNucaRuntime.state_dict`` raises if
    tasks are in flight).
    """
    journal = checkpointer._journal
    if journal is None:
        raise RuntimeError("no phase in progress: nothing to snapshot")
    machine = executor.machine
    # Extension end-of-task hooks (TD-NUCA flushes) may have batched
    # traffic after the trace's own boundary flush.  Draining the batch
    # here is order-neutral — the counters are additive and nothing reads
    # them between here and the next boundary — and leaves the machine in
    # the quiescent shape ``state_dict`` requires.
    machine._flush_traffic()
    return {
        "meta": {
            **checkpointer.meta,
            "segment": checkpointer.segment,
            "tasks_completed": machine.tasks_completed,
        },
        "machine": machine.state_dict(),
        "extension": executor.extension.state_dict(),
        "execution": asdict(executor._stats),
        "progress": {
            "phase_index": journal["phase_index"],
            "phase_start_now": journal["phase_start_now"],
            "dispatch_count": len(journal["durations"]),
            "create_costs": list(journal["create_costs"]),
            "durations": list(journal["durations"]),
            "task_names": list(journal["task_names"]),
            "scheduler_rng": journal["scheduler_rng"],
        },
    }


class Checkpointer:
    """Records the executor's replay journal and writes snapshots.

    One instance is attached to an :class:`~repro.runtime.executor.Executor`
    (``executor.checkpointer``) and lives across the warmup and main
    segments of a run; ``repro.api._run_one`` stamps :attr:`meta` and
    :attr:`segment`.  After a :class:`PreemptedError`, build a *fresh*
    Checkpointer for the resumed run — trigger counters are not reset.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        every: int = 0,
        deadline: float | None = None,
        preempt_after_tasks: int = 0,
        meta: dict | None = None,
    ) -> None:
        if every < 0:
            raise ValueError("every must be >= 0")
        if preempt_after_tasks < 0:
            raise ValueError("preempt_after_tasks must be >= 0")
        self.path = Path(path)
        self.every = int(every)
        #: absolute ``time.monotonic()`` deadline, or None.
        self.deadline = deadline
        self.preempt_after_tasks = int(preempt_after_tasks)
        #: identity of the run (workload/policy/seed/config_sha256).
        self.meta = dict(meta) if meta else {}
        #: "warmup" or "main" — which executor.run call is in progress.
        self.segment = "main"
        #: set (e.g. from a signal handler) to preempt at the next boundary.
        self.preempt_requested = False
        #: live (non-replayed) dispatches seen, across segments.
        self.live_dispatches = 0
        #: snapshots written (periodic + preemption).
        self.saves = 0
        self._journal: dict | None = None

    # --- signal-handler entry point ------------------------------------

    def request_preempt(self) -> None:
        """Ask for checkpoint-then-stop at the next dispatch boundary.

        Safe to call from a signal handler: it only sets a flag.
        """
        self.preempt_requested = True

    # --- journal recording (called by the executor) --------------------

    def phase_begin(self, executor, phase_index: int, start_now: int) -> None:
        """A live phase is starting: reset the journal for it."""
        self._journal = {
            "phase_index": phase_index,
            "phase_start_now": start_now,
            "create_costs": [],
            "durations": [],
            "task_names": [],
            "scheduler_rng": _scheduler_rng_state(executor.scheduler),
        }

    def seed_phase(self, progress: dict) -> None:
        """A phase is being *resumed*: adopt the snapshot's journal.

        Creation costs and the phase-start scheduler RNG come straight
        from the snapshot; dispatch durations are re-appended as the
        executor replays them, so a later checkpoint in the same phase
        carries the complete journal again.
        """
        self._journal = {
            "phase_index": progress["phase_index"],
            "phase_start_now": progress["phase_start_now"],
            "create_costs": list(progress["create_costs"]),
            "durations": [],
            "task_names": [],
            "scheduler_rng": progress["scheduler_rng"],
        }

    def note_create(self, cost: int) -> None:
        self._journal["create_costs"].append(cost)

    def record_dispatch(self, name: str, duration: int) -> None:
        """Journal one dispatch without checking triggers (replay path)."""
        journal = self._journal
        journal["durations"].append(duration)
        journal["task_names"].append(name)

    def after_dispatch(self, executor, name: str, duration: int) -> None:
        """Journal a live dispatch and fire any due trigger.

        Called immediately after the dispatch's FINISH event is queued —
        the one point in the event loop where the machine is quiescent.
        """
        self.record_dispatch(name, duration)
        self.live_dispatches += 1
        if self.preempt_after_tasks and self.live_dispatches >= self.preempt_after_tasks:
            self._preempt(executor)
        if self.preempt_requested:
            self._preempt(executor)
        if self.deadline is not None and time.monotonic() >= self.deadline:
            self._preempt(executor)
        if self.every and self.live_dispatches % self.every == 0:
            self.save(executor)

    # --- snapshot emission ---------------------------------------------

    def save(self, executor, path: str | Path | None = None) -> Path:
        """Write a snapshot of ``executor``'s current state; returns the path."""
        target = self.path if path is None else Path(path)
        write_snapshot_file(target, build_payload(executor, self))
        self.saves += 1
        return target

    def _preempt(self, executor) -> None:
        path = self.save(executor)
        raise PreemptedError(path, executor.machine.tasks_completed)
