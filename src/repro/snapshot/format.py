"""On-disk snapshot format: magic, version, checksum, pickled payload.

A snapshot file is::

    MAGIC (8 bytes) | version (u32 LE) | crc32 of payload (u32 LE) | payload

where the payload is a pickle of the nested primitive-only dict built by
:func:`repro.snapshot.checkpoint.build_payload` (every component's
``state_dict()`` plus the executor's replay journal).  Files are written
through :func:`repro.ioutils.atomic_write`, so a snapshot on disk is
either a complete previous snapshot or a complete new one — never a torn
write.  The CRC covers the payload bytes, so bit rot (or a truncated copy
from a dying filesystem) is detected at load time rather than surfacing
as an unpicklable mess or, worse, silently wrong simulation state.

:func:`load_or_quarantine` is the forgiving loader used by resume paths:
anything that fails the magic/version/CRC/unpickle gauntlet is renamed to
``<name>.corrupt`` and reported, and the caller falls back to a fresh run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import struct
import warnings
import zlib
from pathlib import Path

from repro import failpoints
from repro.ioutils import atomic_write

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "CorruptSnapshotError",
    "SnapshotMismatchError",
    "write_snapshot_file",
    "read_snapshot_file",
    "load_or_quarantine",
    "config_sha256",
    "verify_meta",
]

#: file magic: identifies a repro snapshot regardless of extension.
MAGIC = b"RPROSNAP"

#: bump on any incompatible payload layout change (see DESIGN.md §10).
FORMAT_VERSION = 1

_HEADER = struct.Struct("<II")  # version, crc32(payload)


class CorruptSnapshotError(Exception):
    """The file is not a readable snapshot (bad magic/version/CRC/pickle)."""


class SnapshotMismatchError(ValueError):
    """The snapshot is intact but belongs to a different run configuration."""


def config_sha256(cfg) -> str:
    """Fingerprint of a config dataclass (sha256 of its sorted JSON form).

    Stored in every snapshot and checked on resume so a snapshot can never
    be restored into a machine with different geometry.
    """
    payload = dataclasses.asdict(cfg)
    # The simulation kernel is an execution strategy, not machine geometry:
    # every backend is byte-identical (golden gate), so snapshots resume and
    # cached results match across kernels.
    payload.pop("kernel", None)
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def write_snapshot_file(path: str | Path, payload: dict) -> Path:
    """Serialize ``payload`` to ``path`` atomically; returns the path."""
    path = Path(path)
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    crc = zlib.crc32(data) & 0xFFFFFFFF
    # Chaos site: a byte flipped after the CRC is a torn write — the next
    # read must detect it and quarantine, never resume from it.
    data = failpoints.mangle("snapshot.write.torn", data, path=str(path))
    with atomic_write(path, "wb") as fh:
        fh.write(MAGIC)
        fh.write(_HEADER.pack(FORMAT_VERSION, crc))
        fh.write(data)
    return path


def read_snapshot_file(path: str | Path) -> dict:
    """Load and validate a snapshot file.

    Raises :class:`FileNotFoundError` if the file is missing and
    :class:`CorruptSnapshotError` for any other failure mode.
    """
    raw = Path(path).read_bytes()
    # Chaos site: models bit rot between write and read.
    raw = failpoints.mangle("snapshot.read.corrupt", raw, path=str(path))
    header_len = len(MAGIC) + _HEADER.size
    if len(raw) < header_len:
        raise CorruptSnapshotError(
            f"{path}: truncated snapshot header "
            f"({len(raw)} bytes, a snapshot needs at least {header_len})"
        )
    if raw[: len(MAGIC)] != MAGIC:
        raise CorruptSnapshotError(
            f"{path}: not a snapshot file "
            f"(magic {raw[: len(MAGIC)]!r}, expected {MAGIC!r})"
        )
    version, crc = _HEADER.unpack_from(raw, len(MAGIC))
    if version != FORMAT_VERSION:
        raise CorruptSnapshotError(
            f"{path}: unsupported snapshot format version {version} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    data = raw[header_len:]
    found_crc = zlib.crc32(data) & 0xFFFFFFFF
    if found_crc != crc:
        raise CorruptSnapshotError(
            f"{path}: checksum mismatch (payload crc32 {found_crc:#010x}, "
            f"header says {crc:#010x}) — corrupt payload"
        )
    try:
        payload = pickle.loads(data)
    except Exception as exc:  # noqa: BLE001 - pickle raises a zoo of types
        raise CorruptSnapshotError(f"{path}: unreadable payload: {exc}") from exc
    if not isinstance(payload, dict) or "meta" not in payload:
        raise CorruptSnapshotError(f"{path}: payload is not a snapshot dict")
    return payload


def load_or_quarantine(path: str | Path) -> dict | None:
    """Load a snapshot, quarantining it if corrupt.

    Returns the payload, or ``None`` when the file is missing or corrupt.
    A corrupt file is renamed to ``<name>.corrupt`` (never deleted — it
    may still be useful forensically) and a warning is issued so resume
    paths degrade to a fresh run instead of crashing.
    """
    path = Path(path)
    try:
        return read_snapshot_file(path)
    except FileNotFoundError:
        return None
    except CorruptSnapshotError as exc:
        quarantine = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, quarantine)
            where = f"quarantined to {quarantine}"
        except OSError:
            where = "could not be quarantined"
        warnings.warn(
            f"ignoring corrupt snapshot ({exc}); {where}", stacklevel=2
        )
        return None


def verify_meta(payload: dict, *, workload: str, policy: str, seed: int, cfg) -> None:
    """Check a snapshot belongs to this (workload, policy, seed, config).

    Raises :class:`SnapshotMismatchError` on any difference; resuming a
    snapshot into the wrong run would otherwise produce silently wrong
    (non-byte-identical) statistics.
    """
    meta = payload.get("meta", {})
    expected = {
        "workload": workload,
        "policy": policy,
        "seed": seed,
        "config_sha256": config_sha256(cfg),
    }
    for key, want in expected.items():
        have = meta.get(key)
        if have != want:
            raise SnapshotMismatchError(
                f"snapshot {key} mismatch: snapshot has {have!r}, "
                f"this run expects {want!r}"
            )
