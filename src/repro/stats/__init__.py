"""Statistics collection and reporting."""

from repro.stats.counters import BlockCensus
from repro.stats.report import format_table, normalize_series

__all__ = ["BlockCensus", "format_table", "normalize_series"]
