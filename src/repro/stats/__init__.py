"""Statistics collection and reporting."""

from repro.stats.counters import BlockCensus
from repro.stats.report import (
    format_table,
    normalize_series,
    timeline_bank_heatmap,
    timeline_link_heatmap,
)

__all__ = [
    "BlockCensus",
    "format_table",
    "normalize_series",
    "timeline_bank_heatmap",
    "timeline_link_heatmap",
]
