"""Per-bank LLC load analysis.

S-NUCA's selling point is perfectly balanced bank utilization; TD-NUCA
deliberately *unbalances* it (local-bank mapping concentrates a task's
traffic in its tile).  This module quantifies that: per-bank access
shares, an imbalance metric, and an ASCII mesh heatmap laid out like the
paper's Fig.-1 floorplan.
"""

from __future__ import annotations

from repro.cache.llc import NucaLLC
from repro.noc.topology import Mesh

__all__ = ["bank_access_shares", "load_imbalance", "mesh_heatmap"]

_SHADES = " ░▒▓█"


def bank_access_shares(llc: NucaLLC) -> list[float]:
    """Per-bank fraction of total LLC accesses (uniform = 1/num_banks)."""
    counts = [b.stats.accesses for b in llc.banks]
    total = sum(counts)
    if not total:
        return [0.0] * len(counts)
    return [c / total for c in counts]


def load_imbalance(llc: NucaLLC) -> float:
    """Max-over-mean bank load: 1.0 = perfectly balanced (S-NUCA),
    ``num_banks`` = everything in one bank."""
    shares = bank_access_shares(llc)
    if not any(shares):
        return 1.0
    mean = 1.0 / len(shares)
    return max(shares) / mean


def mesh_heatmap(llc: NucaLLC, mesh: Mesh, title: str = "") -> str:
    """ASCII heatmap of bank access shares on the mesh floorplan."""
    shares = bank_access_shares(llc)
    vmax = max(shares) or 1.0
    lines = [title] if title else []
    for y in range(mesh.height):
        row = []
        for x in range(mesh.width):
            tile = mesh.tile_at(x, y)
            share = shares[tile]
            shade = _SHADES[min(len(_SHADES) - 1, int(share / vmax * (len(_SHADES) - 1) + 0.5))]
            row.append(f"{shade * 2}{share * 100:5.1f}%")
        lines.append("  ".join(row))
    lines.append(f"imbalance (max/mean): {load_imbalance(llc):.2f}")
    return "\n".join(lines)
