"""ASCII bar charts for terminal-rendered figures.

The paper's figures are grouped bar charts; :func:`bar_chart` renders the
same data in a terminal without plotting dependencies, one row per
(benchmark, series) pair, with the bar scaled to a shared axis.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["bar_chart", "grouped_bar_chart"]

_FULL = "█"
_PART = " ▏▎▍▌▋▊▉"


def _bar(value: float, vmax: float, width: int) -> str:
    if vmax <= 0:
        return ""
    frac = max(0.0, min(1.0, value / vmax))
    cells = frac * width
    whole = int(cells)
    rem = int((cells - whole) * 8)
    bar = _FULL * whole
    if rem and whole < width:
        bar += _PART[rem]
    return bar


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 40,
    reference: float | None = None,
    fmt: str = "{:.3f}",
) -> str:
    """One horizontal bar per key; optional reference line value printed
    alongside (e.g. the paper's average)."""
    if not values:
        return title
    vmax = max(max(values.values()), reference or 0.0) or 1.0
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for key, value in values.items():
        lines.append(
            f"{key.ljust(label_w)} | {_bar(value, vmax, width).ljust(width)} "
            + fmt.format(value)
        )
    if reference is not None:
        lines.append(
            f"{'(reference)'.ljust(label_w)} | "
            f"{_bar(reference, vmax, width).ljust(width)} " + fmt.format(reference)
        )
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    title: str = "",
    width: int = 36,
    fmt: str = "{:.3f}",
) -> str:
    """Grouped bars: ``groups[bench][series] = value`` — the shape of the
    paper's per-benchmark figures."""
    if not groups:
        return title
    series_labels: Sequence[str] = list(next(iter(groups.values())))
    vmax = max(
        (v for g in groups.values() for v in g.values()), default=1.0
    ) or 1.0
    bench_w = max(len(b) for b in groups)
    series_w = max(len(s) for s in series_labels)
    lines = [title] if title else []
    for bench, series in groups.items():
        for i, label in enumerate(series_labels):
            prefix = bench.ljust(bench_w) if i == 0 else " " * bench_w
            value = series[label]
            lines.append(
                f"{prefix} {label.ljust(series_w)} | "
                f"{_bar(value, vmax, width).ljust(width)} " + fmt.format(value)
            )
    return "\n".join(lines)
