"""Whole-run block census for the Fig.-3 classification study.

Tracks, per unique (virtual) cache block, which cores accessed it and
whether it was ever written.  Fig. 3's left bars derive directly from this
(its caption defines: *private* = touched by exactly one core over the
whole run; *shared read-only* = touched by several cores, never written;
*shared* = the rest).

The per-block state is packed into one integer — core bitmask in the low
bits, written flag above — and updates are batched per task trace with
NumPy ``unique`` so the census adds O(unique blocks) work per task, not
O(accesses).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BlockCensus", "RNucaCensus"]


@dataclass(frozen=True)
class RNucaCensus:
    """Unique-block counts by whole-run sharing behaviour."""

    private: int
    shared_read_only: int
    shared: int

    @property
    def total(self) -> int:
        return self.private + self.shared_read_only + self.shared

    def fractions(self) -> dict[str, float]:
        total = self.total or 1
        return {
            "private": self.private / total,
            "shared_read_only": self.shared_read_only / total,
            "shared": self.shared / total,
        }


class BlockCensus:
    """Census over every block touched during a run."""

    def __init__(self, num_cores: int) -> None:
        if num_cores <= 0:
            raise ValueError("num_cores must be positive")
        self.num_cores = num_cores
        self._written_bit = 1 << num_cores
        self._core_mask = self._written_bit - 1
        self._state: dict[int, int] = {}

    def record(self, core: int, vblocks: np.ndarray, writes: np.ndarray) -> None:
        """Fold one task trace into the census."""
        if not 0 <= core < self.num_cores:
            raise ValueError("core out of range")
        if len(vblocks) == 0:
            return
        uniq, inverse = np.unique(vblocks, return_inverse=True)
        wrote = np.zeros(len(uniq), dtype=bool)
        np.logical_or.at(wrote, inverse, writes)
        bit = 1 << core
        wbit = self._written_bit
        state = self._state
        for block, w in zip(uniq.tolist(), wrote.tolist()):
            state[block] = state.get(block, 0) | bit | (wbit if w else 0)

    # --- queries ---

    @property
    def unique_blocks(self) -> int:
        return len(self._state)

    def cores_of(self, block: int) -> list[int]:
        mask = self._state.get(block, 0) & self._core_mask
        return [c for c in range(self.num_cores) if mask >> c & 1]

    def was_written(self, block: int) -> bool:
        return bool(self._state.get(block, 0) & self._written_bit)

    def touched_blocks(self) -> np.ndarray:
        """All blocks ever touched, ascending."""
        return np.fromiter(self._state.keys(), dtype=np.int64, count=len(self._state))

    # --- checkpoint/restore ---

    def state_dict(self) -> dict:
        return {"state": list(self._state.items())}

    def load_state_dict(self, state: dict) -> None:
        self._state = {int(b): int(packed) for b, packed in state["state"]}

    def rnuca_census(self) -> RNucaCensus:
        """Classify every touched block per the Fig.-3 left-bar definition."""
        private = shared_ro = shared = 0
        wbit = self._written_bit
        cmask = self._core_mask
        for packed in self._state.values():
            cores = packed & cmask
            single = cores & (cores - 1) == 0
            if single:
                private += 1
            elif packed & wbit:
                shared += 1
            else:
                shared_ro += 1
        return RNucaCensus(private, shared_ro, shared)
