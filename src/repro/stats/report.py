"""Plain-text reporting helpers for tables and normalized figure series."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = [
    "format_table",
    "normalize_series",
    "geomean",
    "fault_report_rows",
    "sweep_summary_rows",
    "timeline_bank_heatmap",
    "timeline_link_heatmap",
]

#: intensity ramp for the ASCII heatmaps, blank through solid block.
HEAT_SHADES = " ░▒▓█"


def _shade(value: float, peak: float) -> str:
    """The ramp character for ``value`` against the hottest cell."""
    if peak <= 0 or value <= 0:
        return HEAT_SHADES[0]
    idx = 1 + int((value / peak) * (len(HEAT_SHADES) - 2))
    return HEAT_SHADES[min(idx, len(HEAT_SHADES) - 1)]


def _link_key(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a < b else (b, a)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def fault_report_rows(faults) -> list[list[str]]:
    """Degraded-mode rows for the run report, from a
    :class:`repro.faults.injector.FaultStats` (skips all-zero groups so
    fault-free metrics stay uncluttered)."""
    rows: list[list[str]] = []
    if faults.banks_failed:
        rows.append(["LLC banks failed", f"{faults.banks_failed}"])
        rows.append(
            [
                "LLC blocks lost (dirty)",
                f"{faults.blocks_lost:,} ({faults.dirty_blocks_lost:,})",
            ]
        )
        rows.append(["L1 copies dropped", f"{faults.l1_copies_dropped:,}"])
        rows.append(["dead-bank redirects", f"{faults.dead_bank_redirects:,}"])
        if faults.rrt_entries_dropped:
            rows.append(["RRT entries dropped", f"{faults.rrt_entries_dropped:,}"])
    if faults.links_failed:
        rows.append(["NoC links failed", f"{faults.links_failed}"])
        rows.append(["mean hop inflation", f"{faults.mean_hop_inflation:.3f}"])
    if faults.dram_transient_errors or faults.dram_retries:
        rows.append(
            [
                "DRAM transient errors / retries",
                f"{faults.dram_transient_errors:,} / {faults.dram_retries:,}",
            ]
        )
        rows.append(["DRAM retry cycles", f"{faults.dram_retry_cycles:,}"])
        if faults.dram_retries_exhausted:
            rows.append(
                ["DRAM retries exhausted", f"{faults.dram_retries_exhausted:,}"]
            )
    if faults.pending_events:
        rows.append(["fault events never triggered", f"{faults.pending_events}"])
    return rows


def sweep_summary_rows(outcome) -> list[list[str]]:
    """Per-sweep summary rows for the CLI, from a
    :class:`repro.experiments.harness.SweepOutcome` (duck-typed so the
    stats layer stays import-light): job counts by outcome plus total wall
    time."""
    ok = f"{outcome.ok}"
    if outcome.from_checkpoint:
        ok += f" ({outcome.from_checkpoint} from checkpoint)"
    failed = f"{outcome.failed}"
    if outcome.timed_out:
        failed += f" ({outcome.timed_out} timed out)"
    preempted = list(getattr(outcome, "preempted", ()))
    rows = [
        ["jobs", f"{outcome.ok + outcome.failed + len(preempted)}"],
        ["ok", ok],
        ["retried", f"{outcome.retried}"],
        ["failed", failed],
    ]
    if preempted:
        rows.append(["preempted (resumable)", f"{len(preempted)}"])
    rows.append(["wall time", f"{outcome.wall_time:.1f}s"])
    return rows


def normalize_series(
    values: Mapping[str, float], baseline: Mapping[str, float]
) -> dict[str, float]:
    """Per-key ratio ``values[k] / baseline[k]`` (the paper's
    "normalized to S-NUCA" presentation)."""
    out = {}
    for key, value in values.items():
        base = baseline[key]
        out[key] = value / base if base else 0.0
    return out


def timeline_bank_heatmap(
    timeline, *, max_rows: int = 20, title: str = "LLC bank access heatmap"
) -> str:
    """ASCII heatmap of per-bank LLC accesses over the run.

    One row per sampling interval (rebinned so at most ``max_rows`` rows
    print), one column per bank; each cell's shade scales with that bank's
    access count in the interval relative to the hottest cell anywhere.
    Rows are annotated with their task range and aggregate LLC hit rate.
    Duck-typed over :class:`repro.obs.timeline.IntervalTimeline` so the
    stats layer stays import-light.
    """
    samples = timeline.samples
    deltas = timeline.bank_access_deltas()
    if not deltas:
        return f"{title}\n  (no intervals sampled)"
    step = -(-len(deltas) // max_rows)  # ceil division
    rows: list[tuple[int, int, list[int], float]] = []
    for start in range(0, len(deltas), step):
        end = min(start + step, len(deltas))
        merged = [0] * timeline.num_banks
        for interval in deltas[start:end]:
            for b, v in enumerate(interval):
                merged[b] += v
        s0, s1 = samples[start], samples[end]
        acc = sum(s1.bank_accesses) - sum(s0.bank_accesses)
        hits = sum(s1.bank_hits) - sum(s0.bank_hits)
        rows.append(
            (
                s0.tasks_completed,
                s1.tasks_completed,
                merged,
                hits / acc if acc else 0.0,
            )
        )
    peak = max(max(r[2]) for r in rows)
    digits = "".join(str(b % 10) for b in range(timeline.num_banks))
    width = max(len(str(rows[-1][1])), 5)
    lines = [
        title,
        f"  {'tasks':>{2 * width + 1}}  bank {digits}  LLC hit%",
    ]
    for t0, t1, merged, rate in rows:
        cells = "".join(_shade(v, peak) for v in merged)
        lines.append(
            f"  {t0:>{width}}-{t1:<{width}}       {cells}  {rate * 100:7.1f}%"
        )
    lines.append(f"  peak cell: {peak:,} accesses, shades low->high {HEAT_SHADES[1:]!r}")
    return "\n".join(lines)


def timeline_link_heatmap(
    timeline, mesh, *, title: str = "NoC link load heatmap"
) -> str:
    """ASCII mesh floorplan with every link shaded by its byte load.

    Loads come from :meth:`IntervalTimeline.link_loads`, which XY-routes
    the timeline's core->bank request matrix — the same routing the
    simulator charges.  Links that carried no attributed traffic print as
    ``.`` so the mesh structure stays visible.
    """
    loads = timeline.link_loads(mesh)
    peak = max(loads.values(), default=0)

    def link_char(a: int, b: int) -> str:
        load = loads.get(_link_key(a, b), 0)
        return _shade(load, peak) if load else "."

    lines = [title]
    for y in range(mesh.height):
        row = []
        for x in range(mesh.width):
            tile = mesh.tile_at(x, y)
            row.append(f"{tile:2d}")
            if x < mesh.width - 1:
                row.append(link_char(tile, mesh.tile_at(x + 1, y)) * 3)
        lines.append("  " + "".join(row))
        if y < mesh.height - 1:
            vrow = []
            for x in range(mesh.width):
                tile = mesh.tile_at(x, y)
                vrow.append(" " + link_char(tile, mesh.tile_at(x, y + 1)) + "   ")
            lines.append("  " + "".join(vrow).rstrip())
    if peak:
        lines.append(
            f"  peak link: {peak:,} bytes, shades low->high {HEAT_SHADES[1:]!r}"
        )
    else:
        lines.append("  (no cross-tile traffic attributed)")
    return "\n".join(lines)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the conventional average for speedup series)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))
