"""Plain-text reporting helpers for tables and normalized figure series."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = [
    "format_table",
    "normalize_series",
    "geomean",
    "fault_report_rows",
    "sweep_summary_rows",
]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def fault_report_rows(faults) -> list[list[str]]:
    """Degraded-mode rows for the run report, from a
    :class:`repro.faults.injector.FaultStats` (skips all-zero groups so
    fault-free metrics stay uncluttered)."""
    rows: list[list[str]] = []
    if faults.banks_failed:
        rows.append(["LLC banks failed", f"{faults.banks_failed}"])
        rows.append(
            [
                "LLC blocks lost (dirty)",
                f"{faults.blocks_lost:,} ({faults.dirty_blocks_lost:,})",
            ]
        )
        rows.append(["L1 copies dropped", f"{faults.l1_copies_dropped:,}"])
        rows.append(["dead-bank redirects", f"{faults.dead_bank_redirects:,}"])
        if faults.rrt_entries_dropped:
            rows.append(["RRT entries dropped", f"{faults.rrt_entries_dropped:,}"])
    if faults.links_failed:
        rows.append(["NoC links failed", f"{faults.links_failed}"])
        rows.append(["mean hop inflation", f"{faults.mean_hop_inflation:.3f}"])
    if faults.dram_transient_errors or faults.dram_retries:
        rows.append(
            [
                "DRAM transient errors / retries",
                f"{faults.dram_transient_errors:,} / {faults.dram_retries:,}",
            ]
        )
        rows.append(["DRAM retry cycles", f"{faults.dram_retry_cycles:,}"])
        if faults.dram_retries_exhausted:
            rows.append(
                ["DRAM retries exhausted", f"{faults.dram_retries_exhausted:,}"]
            )
    if faults.pending_events:
        rows.append(["fault events never triggered", f"{faults.pending_events}"])
    return rows


def sweep_summary_rows(outcome) -> list[list[str]]:
    """Per-sweep summary rows for the CLI, from a
    :class:`repro.experiments.harness.SweepOutcome` (duck-typed so the
    stats layer stays import-light): job counts by outcome plus total wall
    time."""
    ok = f"{outcome.ok}"
    if outcome.from_checkpoint:
        ok += f" ({outcome.from_checkpoint} from checkpoint)"
    failed = f"{outcome.failed}"
    if outcome.timed_out:
        failed += f" ({outcome.timed_out} timed out)"
    return [
        ["jobs", f"{outcome.ok + outcome.failed}"],
        ["ok", ok],
        ["retried", f"{outcome.retried}"],
        ["failed", failed],
        ["wall time", f"{outcome.wall_time:.1f}s"],
    ]


def normalize_series(
    values: Mapping[str, float], baseline: Mapping[str, float]
) -> dict[str, float]:
    """Per-key ratio ``values[k] / baseline[k]`` (the paper's
    "normalized to S-NUCA" presentation)."""
    out = {}
    for key, value in values.items():
        base = baseline[key]
        out[key] = value / base if base else 0.0
    return out


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the conventional average for speedup series)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))
