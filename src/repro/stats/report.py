"""Plain-text reporting helpers for tables and normalized figure series."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["format_table", "normalize_series", "geomean"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def normalize_series(
    values: Mapping[str, float], baseline: Mapping[str, float]
) -> dict[str, float]:
    """Per-key ratio ``values[k] / baseline[k]`` (the paper's
    "normalized to S-NUCA" presentation)."""
    out = {}
    for key, value in values.items():
        base = baseline[key]
        out[key] = value / base if base else 0.0
    return out


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the conventional average for speedup series)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))
