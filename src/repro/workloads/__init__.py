"""The eight Table-II task-dataflow benchmarks, rebuilt as TDG generators.

Each workload reproduces its original's *dependency structure* — who reads
and writes which region, at what granularity, with which taskwait barriers
— because every metric the paper evaluates follows from that structure.
Footprints scale with :attr:`repro.config.SystemConfig.capacity_scale` so
Table II's input-size/LLC-capacity ratios are preserved at any scale.
"""

from repro.workloads.base import TableIIRow, Workload
from repro.workloads.registry import BENCHMARKS, get_workload, workload_names

__all__ = ["Workload", "TableIIRow", "BENCHMARKS", "get_workload", "workload_names"]
