"""Workload infrastructure: Table-II metadata, scaling, blocked grids.

The stencil benchmarks (Gauss, Jacobi, Redblack) declare dependencies at
two granularities, as the OmpSs originals do with array sections: a bulk
*interior* per grid cell (private to the owning task) and thin *edge*
strips exchanged with neighbours.  :class:`BlockedGrid` lays both out in
the simulated address space.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.config import SystemConfig
from repro.deps import DepMode
from repro.mem.allocator import VirtualAllocator
from repro.mem.region import Region
from repro.runtime.task import Dependency, Program, Task

__all__ = [
    "TableIIRow",
    "Workload",
    "BlockedGrid",
    "Cell",
    "round_up",
    "add_init_phase",
]


def add_init_phase(
    prog: Program,
    regions: list[Region],
    num_tasks: int,
    compute_per_access: int | None = None,
) -> None:
    """Prepend a parallel initialization phase writing ``regions``.

    The phase is marked warmup: it runs (populating caches and OS page
    classifications, as the paper's full-system simulation does during
    initialization) but the harness excludes it from all measurements.
    Initialization writes are what prevent an OS classifier from ever
    seeing the data as shared read-only (Section II-C).
    """
    num_tasks = max(1, min(num_tasks, len(regions)))
    phase: list[Task] = []
    per_task = (len(regions) + num_tasks - 1) // num_tasks
    for t in range(num_tasks):
        group = regions[t * per_task : (t + 1) * per_task]
        if not group:
            break
        phase.append(
            Task(
                f"init[{t}]",
                tuple(Dependency(r, DepMode.OUT) for r in group),
                compute_per_access=compute_per_access,
            )
        )
    prog.phases.insert(0, phase)
    prog.warmup_phases += 1


def round_up(value: int, multiple: int) -> int:
    """Smallest multiple of ``multiple`` >= ``value`` (>= one multiple)."""
    if multiple <= 0:
        raise ValueError("multiple must be positive")
    return max(multiple, (value + multiple - 1) // multiple * multiple)


@dataclass(frozen=True)
class TableIIRow:
    """One row of the paper's Table II."""

    bench: str
    problem: str
    input_mb: float
    num_tasks: int
    avg_task_kb: float


class Workload(ABC):
    """A benchmark: builds a :class:`Program` for a given machine scale."""

    #: registry key (lowercase).
    name: str = ""
    #: the paper's Table-II row for this benchmark.
    paper: TableIIRow
    #: per-access compute cycles modelling the kernel's arithmetic
    #: intensity (None = the config default, i.e. memory-bound).
    compute_per_access: int | None = None
    #: TDG overlap analysis mode: "exact" (fast, array-section tiling) or
    #: "interval" (full overlap analysis, needed when a task declares one
    #: array section spanning many producers' sections, as the reductions
    #: in Histo and Kmeans do).
    tdg_overlap: str = "exact"

    def scaled_input_bytes(self, cfg: SystemConfig) -> int:
        """Table-II input-set bytes scaled by the machine's capacity scale."""
        return max(
            cfg.block_bytes,
            int(self.paper.input_mb * 1024 * 1024 * cfg.capacity_scale),
        )

    @abstractmethod
    def build(self, cfg: SystemConfig, seed: int = 0) -> Program:
        """Construct the program (tasks, dependencies, phases)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Workload {self.name}>"


@dataclass(frozen=True)
class Cell:
    """One grid cell: a bulk interior plus four edge strips.

    Layout within the cell's allocation: N edge, S edge, W edge, E edge,
    then the interior.  Edges of adjacent cells are *distinct* regions —
    a neighbour reads this cell's edge strip, as with overlapping array
    sections in the originals.
    """

    north: Region
    south: Region
    west: Region
    east: Region
    interior: Region

    @property
    def whole(self) -> Region:
        """The full cell (edges + interior, contiguous)."""
        start = self.north.start
        end = self.interior.end
        return Region(start, end - start, self.interior.name)

    def edges(self) -> tuple[Region, Region, Region, Region]:
        return (self.north, self.south, self.west, self.east)


class BlockedGrid:
    """``nx`` x ``ny`` grid of cells carved from one allocation.

    ``cell_bytes`` is the total per-cell footprint; ``edge_bytes`` is the
    size of each of the four strips (block-aligned, at least one block).
    """

    def __init__(
        self,
        alloc: VirtualAllocator,
        name: str,
        nx: int,
        ny: int,
        cell_bytes: int,
        edge_bytes: int,
        block_bytes: int,
    ) -> None:
        if nx <= 0 or ny <= 0:
            raise ValueError("grid dimensions must be positive")
        edge_bytes = round_up(edge_bytes, block_bytes)
        cell_bytes = round_up(cell_bytes, block_bytes)
        if cell_bytes < 5 * edge_bytes:
            cell_bytes = 5 * edge_bytes  # room for 4 edges + interior
        self.nx = nx
        self.ny = ny
        self.cell_bytes = cell_bytes
        self.edge_bytes = edge_bytes
        self._cells: list[Cell] = []
        for j in range(ny):
            for i in range(nx):
                base = alloc.allocate(cell_bytes, f"{name}[{i},{j}]", align=block_bytes)
                e = edge_bytes
                self._cells.append(
                    Cell(
                        north=base.subregion(0, e, f"{name}[{i},{j}].N"),
                        south=base.subregion(e, e, f"{name}[{i},{j}].S"),
                        west=base.subregion(2 * e, e, f"{name}[{i},{j}].W"),
                        east=base.subregion(3 * e, e, f"{name}[{i},{j}].E"),
                        interior=base.subregion(
                            4 * e, cell_bytes - 4 * e, f"{name}[{i},{j}].int"
                        ),
                    )
                )

    def cell(self, i: int, j: int) -> Cell:
        if not (0 <= i < self.nx and 0 <= j < self.ny):
            raise IndexError("cell out of range")
        return self._cells[j * self.nx + i]

    def neighbor_edges(self, i: int, j: int) -> list[Region]:
        """The edge strips of the four neighbours facing cell (i, j)."""
        out = []
        if j > 0:
            out.append(self.cell(i, j - 1).south)
        if j < self.ny - 1:
            out.append(self.cell(i, j + 1).north)
        if i > 0:
            out.append(self.cell(i - 1, j).east)
        if i < self.nx - 1:
            out.append(self.cell(i + 1, j).west)
        return out

    @property
    def total_bytes(self) -> int:
        return self.nx * self.ny * self.cell_bytes
