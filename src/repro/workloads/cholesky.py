"""Cholesky — the paper's Fig.-2 example (bonus workload).

The paper introduces task dataflow with a blocked Cholesky factorization
(``potrf`` / ``trsm`` / ``syrk`` / ``gemm`` over a lower-triangular block
matrix) and shows its TDG.  Cholesky is not part of the Table-II
evaluation suite, but it is the canonical task-dataflow kernel, so it
ships as a ninth workload for examples, TDG visualization and extra
coverage.  Structure per step ``k``:

    potrf(k):            inout A[k][k]
    trsm(k, i):   i > k: in    A[k][k], inout A[i][k]
    syrk(k, i):   i > k: in    A[i][k], inout A[i][i]
    gemm(k, i, j) i>j>k: in    A[i][k], in A[j][k], inout A[i][j]
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.deps import DepMode
from repro.mem.allocator import VirtualAllocator
from repro.runtime.task import AccessChunk, Dependency, Program, Task
from repro.workloads.base import TableIIRow, Workload, add_init_phase

__all__ = ["Cholesky"]


class Cholesky(Workload):
    name = "cholesky"
    #: not a Table-II row — sized like LU for comparability.
    paper = TableIIRow(
        "Cholesky", "Fig.-2 example: blocked SPD factorization", 36.7, 680, 318
    )
    compute_per_access = 6

    B = 15
    PANEL_PASSES = 6
    INOUT_PASSES = 4

    def build(self, cfg: SystemConfig, seed: int = 0) -> Program:
        alloc = VirtualAllocator()
        total = self.scaled_input_bytes(cfg)
        nblocks = self.B * (self.B + 1) // 2  # lower triangle only
        cell_bytes = max(cfg.block_bytes * 4, total // nblocks)
        A = {}
        for i in range(self.B):
            for j in range(i + 1):
                A[(i, j)] = alloc.allocate(cell_bytes, f"A[{i},{j}]")

        prog = Program(self.name)
        phase = prog.new_phase()
        add_init_phase(prog, list(A.values()), 15, self.compute_per_access)
        cpa = self.compute_per_access
        pp, ip = self.PANEL_PASSES, self.INOUT_PASSES
        for k in range(self.B):
            phase.append(
                Task(
                    f"potrf[{k}]",
                    (Dependency(A[(k, k)], DepMode.INOUT),),
                    (AccessChunk(A[(k, k)], True, ip, rmw=True),),
                    compute_per_access=cpa,
                )
            )
            for i in range(k + 1, self.B):
                phase.append(
                    Task(
                        f"trsm[{k},{i}]",
                        (
                            Dependency(A[(k, k)], DepMode.IN),
                            Dependency(A[(i, k)], DepMode.INOUT),
                        ),
                        (
                            AccessChunk(A[(k, k)], False, pp),
                            AccessChunk(A[(i, k)], True, ip, rmw=True),
                        ),
                        compute_per_access=cpa,
                    )
                )
            for i in range(k + 1, self.B):
                phase.append(
                    Task(
                        f"syrk[{k},{i}]",
                        (
                            Dependency(A[(i, k)], DepMode.IN),
                            Dependency(A[(i, i)], DepMode.INOUT),
                        ),
                        (
                            AccessChunk(A[(i, k)], False, pp),
                            AccessChunk(A[(i, i)], True, ip, rmw=True),
                        ),
                        compute_per_access=cpa,
                    )
                )
                for j in range(k + 1, i):
                    phase.append(
                        Task(
                            f"gemm[{k},{i},{j}]",
                            (
                                Dependency(A[(i, k)], DepMode.IN),
                                Dependency(A[(j, k)], DepMode.IN),
                                Dependency(A[(i, j)], DepMode.INOUT),
                            ),
                            (
                                AccessChunk(A[(i, k)], False, pp),
                                AccessChunk(A[(j, k)], False, pp),
                                AccessChunk(A[(i, j)], True, ip, rmw=True),
                            ),
                            compute_per_access=cpa,
                        )
                    )
        return prog
