"""Gauss — blocked Gauss-Seidel relaxation, 2 iterations (Table II row 1).

40x40 grid of cell tasks, one phase (taskwait) per iteration.  Each task
updates its cell in place (``inout`` interior and edge strips) reading the
edge strips of its four neighbours; west/north edges written earlier in
the same phase create the classic wavefront TDG.

Reproduced Fig.-3 behaviour: interiors are single-user per phase and the
next iteration is not yet created, so their ``UseDesc`` hits 0 at task
start -> bypassed every use -> NotReused (~94% of blocks).  The thin edge
strips are multi-reader ``in``/``inout`` regions — the paper's "2% of
unique blocks used both In and Out responsible for 41% of L1 misses" —
so they get several access passes per task.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.deps import DepMode
from repro.mem.allocator import VirtualAllocator
from repro.runtime.task import AccessChunk, Dependency, Program, Task
from repro.workloads.base import BlockedGrid, TableIIRow, Workload, add_init_phase

__all__ = ["Gauss"]


class Gauss(Workload):
    name = "gauss"
    paper = TableIIRow(
        "Gauss", "2D Matrix N^2 = 58982400, 2 iters.", 488.04, 3200, 294
    )
    compute_per_access = 26

    NX = NY = 40
    ITERATIONS = 2
    #: extra sweeps over edge strips per task (they are the hot data).
    EDGE_PASSES = 3

    def build(self, cfg: SystemConfig, seed: int = 0) -> Program:
        alloc = VirtualAllocator()
        total = self.scaled_input_bytes(cfg)
        cell_bytes = max(cfg.block_bytes * 8, total // (self.NX * self.NY))
        grid = BlockedGrid(
            alloc,
            "m",
            self.NX,
            self.NY,
            cell_bytes,
            max(cfg.block_bytes, cell_bytes // 32),
            cfg.block_bytes,
        )
        prog = Program(self.name)
        add_init_phase(
            prog,
            [grid.cell(i, j).whole for j in range(self.NY) for i in range(self.NX)],
            50,
            self.compute_per_access,
        )
        for _ in range(self.ITERATIONS):
            phase = prog.new_phase()
            for j in range(self.NY):
                for i in range(self.NX):
                    cell = grid.cell(i, j)
                    halo = grid.neighbor_edges(i, j)
                    deps = (
                        [Dependency(cell.interior, DepMode.INOUT)]
                        + [Dependency(e, DepMode.INOUT) for e in cell.edges()]
                        + [Dependency(h, DepMode.IN) for h in halo]
                    )
                    accesses = (
                        [AccessChunk(h, False, self.EDGE_PASSES) for h in halo]
                        + [AccessChunk(e, False, self.EDGE_PASSES) for e in cell.edges()]
                        + [AccessChunk(cell.interior, True, rmw=True)]
                        + [AccessChunk(e, True, rmw=True) for e in cell.edges()]
                    )
                    phase.append(
                        Task(
                            f"gauss[{i},{j}]",
                            tuple(deps),
                            tuple(accesses),
                            compute_per_access=self.compute_per_access,
                        )
                    )
        return prog
