"""Histo — blocked histogram with per-chunk normalization (Table II row 2).

One phase, 1831 tasks chained purely by dataflow.  Each image chunk flows
through a *scan* task (read the chunk, emit its min/max bin range) and a
*process* task (re-read the bin range, normalize the chunk in place and
emit its private histogram); scan/process pairs are created adjacently, so
the replica the scan creates lives only briefly before the process task's
write lazily invalidates it — Histo's RRTs stay small (paper: never above
23 entries).  A 30-way reduction folds the 900 histograms.

Fig.-3 placement: chunks are read then rewritten -> classified **Both**
(low NotReused), and the in-place write makes an OS classifier see the
pages as shared read-write (R-NUCA categorizes >90% of Histo as shared).
The 1800 small ``out`` regions (min/max + histograms) give Histo the
highest Out-dependency proportion of the suite and its outsized flush
time (Section V-E: 0.49%).
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.deps import DepMode
from repro.mem.allocator import VirtualAllocator
from repro.runtime.task import AccessChunk, Dependency, Program, Task
from repro.workloads.base import TableIIRow, Workload, add_init_phase, round_up

__all__ = ["Histo"]


class Histo(Workload):
    name = "histo"
    paper = TableIIRow(
        "Histo", "1500x1500 pixels, 50x50 blocks, 50 bins", 478.75, 1800, 528
    )
    compute_per_access = 24
    tdg_overlap = "interval"

    CHUNKS = 900
    REDUCE_FANIN = 30
    HIST_BYTES = 512  # 50 bins + counters, rounded to cache blocks

    def build(self, cfg: SystemConfig, seed: int = 0) -> Program:
        alloc = VirtualAllocator()
        total = self.scaled_input_bytes(cfg)
        chunk_bytes = max(cfg.block_bytes * 4, total // self.CHUNKS)
        hist_bytes = round_up(self.HIST_BYTES, cfg.block_bytes)
        chunks = [
            alloc.allocate(chunk_bytes, f"img[{i}]") for i in range(self.CHUNKS)
        ]
        minmax = [
            alloc.allocate(cfg.block_bytes, f"minmax[{i}]")
            for i in range(self.CHUNKS)
        ]
        # Per-chunk histograms live in ONE contiguous array so each
        # reduction stage declares a single array-section dependency (one
        # RRT entry instead of 30).
        hist_array = alloc.allocate(hist_bytes * self.CHUNKS, "hists")
        hists = [
            hist_array.subregion(i * hist_bytes, hist_bytes, f"hist[{i}]")
            for i in range(self.CHUNKS)
        ]
        n_partial = self.CHUNKS // self.REDUCE_FANIN
        partial_array = alloc.allocate(hist_bytes * n_partial, "partials")
        partials = [
            partial_array.subregion(g * hist_bytes, hist_bytes, f"partial[{g}]")
            for g in range(n_partial)
        ]
        final = alloc.allocate(hist_bytes, "hist.final")

        prog = Program(self.name)
        phase = prog.new_phase()
        add_init_phase(prog, chunks, 30, self.compute_per_access)
        for i, chunk in enumerate(chunks):
            phase.append(
                Task(
                    f"scan[{i}]",
                    (
                        Dependency(chunk, DepMode.IN),
                        Dependency(minmax[i], DepMode.OUT),
                    ),
                    compute_per_access=self.compute_per_access,
                )
            )
            phase.append(
                Task(
                    f"process[{i}]",
                    (
                        Dependency(minmax[i], DepMode.IN),
                        Dependency(chunk, DepMode.INOUT),
                        Dependency(hists[i], DepMode.OUT),
                    ),
                    (
                        AccessChunk(minmax[i], False),
                        AccessChunk(chunk, True, rmw=True),
                        AccessChunk(hists[i], True, 2),
                    ),
                    compute_per_access=self.compute_per_access,
                )
            )
        group_bytes = hist_bytes * self.REDUCE_FANIN
        for g in range(n_partial):
            section = hist_array.subregion(g * group_bytes, group_bytes, f"hists[{g}]")
            phase.append(
                Task(
                    f"reduce[{g}]",
                    (
                        Dependency(section, DepMode.IN),
                        Dependency(partials[g], DepMode.OUT),
                    ),
                    compute_per_access=self.compute_per_access,
                )
            )
        phase.append(
            Task(
                "reduce.final",
                (
                    Dependency(partial_array, DepMode.IN),
                    Dependency(final, DepMode.OUT),
                ),
                compute_per_access=self.compute_per_access,
            )
        )
        return prog
