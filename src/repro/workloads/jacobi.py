"""Jacobi — 5-point blocked Jacobi iteration, ping-pong arrays (Table II
row 3).

Two 8x8 grids A and B; in iteration ``k`` each of the 64 tasks reads its
source cell plus the facing edge strips of the four neighbours, and writes
its destination cell.  A taskwait separates iterations (the OmpSs original
swaps the array pointers between iterations), so at task start nothing in
the next iteration exists yet: bulk interiors and destination cells all
see ``UseDesc = 0`` and bypass the LLC — the paper's >97% NotReused and
the deepest LLC-energy cut (0.10x) of all benchmarks.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.deps import DepMode
from repro.mem.allocator import VirtualAllocator
from repro.runtime.task import AccessChunk, Dependency, Program, Task
from repro.workloads.base import BlockedGrid, TableIIRow, Workload, add_init_phase

__all__ = ["Jacobi"]


class Jacobi(Workload):
    name = "jacobi"
    paper = TableIIRow(
        "Jacobi", "2D Matrix N^2 = 16777216, 5 iters.", 264.34, 320, 4112
    )
    compute_per_access = 20

    NX = NY = 8
    ITERATIONS = 5
    EDGE_PASSES = 2

    def build(self, cfg: SystemConfig, seed: int = 0) -> Program:
        alloc = VirtualAllocator()
        total = self.scaled_input_bytes(cfg)
        cells = self.NX * self.NY
        cell_bytes = max(cfg.block_bytes * 8, total // (2 * cells))
        edge = max(cfg.block_bytes, cell_bytes // 64)
        grids = [
            BlockedGrid(alloc, g, self.NX, self.NY, cell_bytes, edge, cfg.block_bytes)
            for g in ("A", "B")
        ]
        prog = Program(self.name)
        add_init_phase(
            prog,
            [
                g.cell(i, j).whole
                for g in grids
                for j in range(self.NY)
                for i in range(self.NX)
            ],
            32,
            self.compute_per_access,
        )
        for it in range(self.ITERATIONS):
            src = grids[it % 2]
            dst = grids[(it + 1) % 2]
            phase = prog.new_phase()
            for j in range(self.NY):
                for i in range(self.NX):
                    scell = src.cell(i, j)
                    dcell = dst.cell(i, j)
                    halo = src.neighbor_edges(i, j)
                    deps = (
                        [Dependency(scell.interior, DepMode.IN)]
                        + [Dependency(e, DepMode.IN) for e in scell.edges()]
                        + [Dependency(h, DepMode.IN) for h in halo]
                        + [Dependency(dcell.whole, DepMode.OUT)]
                    )
                    accesses = (
                        [AccessChunk(h, False, self.EDGE_PASSES) for h in halo]
                        + [AccessChunk(e, False, self.EDGE_PASSES) for e in scell.edges()]
                        + [
                            AccessChunk(scell.interior, False),
                            AccessChunk(dcell.whole, True),
                        ]
                    )
                    phase.append(
                        Task(
                            f"jacobi[{it}][{i},{j}]",
                            tuple(deps),
                            tuple(accesses),
                            compute_per_access=self.compute_per_access,
                        )
                    )
        return prog
