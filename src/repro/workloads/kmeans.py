"""Kmeans — one Lloyd iteration over partitioned points (Table II row 4).

224 map tasks each read the shared centroid set (several passes — the
90-dimension distance computation re-walks it per point) and stream
through their private point chunk once, producing per-task partial sums;
4 reduction tasks fold the partials into the new centroids.  Everything
lives in one phase.

Fig.-3 behaviour: point chunks are single-use -> bypassed -> NotReused
(the bulk of the footprint, >97%); the centroid region is a many-reader
``in`` dependency -> cluster-replicated; partials are ``out`` with a
created consumer -> local-bank mapped.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.deps import DepMode
from repro.mem.allocator import VirtualAllocator
from repro.runtime.task import AccessChunk, Dependency, Program, Task
from repro.workloads.base import TableIIRow, Workload, add_init_phase, round_up

__all__ = ["Kmeans"]


class Kmeans(Workload):
    name = "kmeans"
    paper = TableIIRow(
        "Kmeans", "450000 pts., 90 dims, 6 clusters, 1 iter.", 314.37, 228, 1404
    )
    compute_per_access = 60  # 90-dim distances are arithmetic-heavy

    MAP_TASKS = 224
    REDUCERS = 4
    CENTROID_BYTES = 6 * 90 * 8  # clusters x dims x double
    CENTROID_PASSES = 3
    tdg_overlap = "interval"

    def build(self, cfg: SystemConfig, seed: int = 0) -> Program:
        alloc = VirtualAllocator()
        total = self.scaled_input_bytes(cfg)
        chunk_bytes = max(cfg.block_bytes * 4, total // self.MAP_TASKS)
        # Centroids and partial sums scale with the capacity scale like the
        # rest of the footprint, so the reduction tail keeps its (tiny)
        # paper-relative weight.
        cbytes = round_up(
            max(1, int(self.CENTROID_BYTES * cfg.capacity_scale * 8)),
            cfg.block_bytes,
        )
        centroids = alloc.allocate(cbytes, "centroids")
        new_centroids = alloc.allocate(cbytes, "centroids.new")
        chunks = [
            alloc.allocate(chunk_bytes, f"pts[{i}]") for i in range(self.MAP_TASKS)
        ]
        # Partial sums live in ONE contiguous array: each map task writes
        # its slice, each reducer declares a single array-section ``in``
        # dependency spanning its 56 slices (so reducers occupy 2 RRT
        # entries, not 57 — the paper's Kmeans RRTs never exceed 23).
        partial_array = alloc.allocate(cbytes * self.MAP_TASKS, "partials")
        partials = [
            partial_array.subregion(i * cbytes, cbytes, f"partial[{i}]")
            for i in range(self.MAP_TASKS)
        ]

        prog = Program(self.name)
        add_init_phase(prog, chunks, 16, self.compute_per_access)
        # Setup: seed the initial centroids (written once -> an OS page
        # classifier can never see them as shared read-only; the runtime
        # still cluster-replicates them for the map tasks).
        setup = prog.new_phase()
        setup.append(
            Task(
                "init_centroids",
                (Dependency(centroids, DepMode.OUT),),
                compute_per_access=self.compute_per_access,
            )
        )
        prog.warmup_phases = max(prog.warmup_phases, 2)
        phase = prog.new_phase()
        for i in range(self.MAP_TASKS):
            phase.append(
                Task(
                    f"assign[{i}]",
                    (
                        Dependency(centroids, DepMode.IN),
                        Dependency(chunks[i], DepMode.IN),
                        Dependency(partials[i], DepMode.OUT),
                    ),
                    (
                        AccessChunk(centroids, False, self.CENTROID_PASSES),
                        AccessChunk(chunks[i], False),
                        AccessChunk(partials[i], True),
                    ),
                    compute_per_access=self.compute_per_access,
                )
            )
        per_reducer = self.MAP_TASKS // self.REDUCERS
        for r in range(self.REDUCERS):
            section = partial_array.subregion(
                r * per_reducer * cbytes, per_reducer * cbytes, f"partials[{r}]"
            )
            phase.append(
                Task(
                    f"reduce[{r}]",
                    (
                        Dependency(section, DepMode.IN),
                        Dependency(new_centroids, DepMode.INOUT),
                    ),
                    compute_per_access=self.compute_per_access,
                )
            )
        return prog
