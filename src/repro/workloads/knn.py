"""KNN — k-nearest-neighbour classification (Table II row 5).

The small training set is read (with several passes) by every distance
task — the canonical cluster-replication client.  Input points are
partitioned into 224 chunks; each chunk flows through a *distance* task
and then a *classify* task (448 tasks total, one phase), so chunks are
read twice: once replicated, once bypassed -> classified **In** (KNN has
a low NotReused fraction, Fig. 3) and all three policies enjoy near-100%
LLC hit ratios (Fig. 10) because the hot training set fits in the LLC.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.deps import DepMode
from repro.mem.allocator import VirtualAllocator
from repro.runtime.task import AccessChunk, Dependency, Program, Task
from repro.workloads.base import TableIIRow, Workload

__all__ = ["KNN"]


class KNN(Workload):
    name = "knn"
    paper = TableIIRow(
        "KNN", "512/229376 training/input pts, 8 classes", 85.01, 448, 318
    )
    compute_per_access = 150  # 90-dim distance per training point

    CHUNKS = 224
    TRAINING_FRACTION = 0.015
    INPUT_FRACTION = 0.85
    DIST_FRACTION = 0.12
    TRAINING_PASSES = 16

    def build(self, cfg: SystemConfig, seed: int = 0) -> Program:
        alloc = VirtualAllocator()
        total = self.scaled_input_bytes(cfg)
        blk = cfg.block_bytes
        training = alloc.allocate(
            max(blk * 8, int(total * self.TRAINING_FRACTION)), "training"
        )
        chunk_bytes = max(blk * 4, int(total * self.INPUT_FRACTION) // self.CHUNKS)
        dist_bytes = max(blk, int(total * self.DIST_FRACTION) // self.CHUNKS)
        chunks = [alloc.allocate(chunk_bytes, f"in[{i}]") for i in range(self.CHUNKS)]
        dists = [alloc.allocate(dist_bytes, f"dist[{i}]") for i in range(self.CHUNKS)]
        labels = [alloc.allocate(blk, f"label[{i}]") for i in range(self.CHUNKS)]

        prog = Program(self.name)
        # Setup: one task populates the training set.  The write is what
        # permanently declassifies the training pages for an OS classifier
        # (dirty -> shared, never shared-read-only) while the runtime still
        # replicates them — the paper's core observation (Section II-E).
        setup = prog.new_phase()
        setup.append(
            Task(
                "init_training",
                (Dependency(training, DepMode.OUT),),
                compute_per_access=self.compute_per_access,
            )
        )
        prog.warmup_phases = 1
        phase = prog.new_phase()
        for i in range(self.CHUNKS):
            # The distance kernel normalizes the input points in place
            # (inout), so an OS classifier later sees the chunk pages as
            # shared read-write once the classify task touches them from
            # another core — the paper's <1% shared-read-only observation.
            phase.append(
                Task(
                    f"dist[{i}]",
                    (
                        Dependency(training, DepMode.IN),
                        Dependency(chunks[i], DepMode.INOUT),
                        Dependency(dists[i], DepMode.OUT),
                    ),
                    (
                        AccessChunk(chunks[i], True, rmw=True),
                        AccessChunk(training, False, self.TRAINING_PASSES),
                        AccessChunk(dists[i], True),
                    ),
                    compute_per_access=self.compute_per_access,
                )
            )
        for i in range(self.CHUNKS):
            phase.append(
                Task(
                    f"classify[{i}]",
                    (
                        Dependency(chunks[i], DepMode.IN),
                        Dependency(dists[i], DepMode.IN),
                        Dependency(labels[i], DepMode.OUT),
                    ),
                    (
                        AccessChunk(dists[i], False, 2),
                        AccessChunk(chunks[i], False),
                        AccessChunk(labels[i], True),
                    ),
                    compute_per_access=self.compute_per_access,
                )
            )
        return prog
