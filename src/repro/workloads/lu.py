"""LU — blocked right-looking LU factorization (Table II row 6).

A single TDG (no taskwait) over a 15x15 block matrix: ``diag(k)``
factorizes the pivot block, ``trsm`` tasks solve the row/column panels
against it, and ``gemm`` tasks update the trailing submatrix reading the
panels — the same TDG family as the paper's Fig.-2 Cholesky.

LU is the anti-MD5: heavy cross-task reuse of the panels (replicated
``in`` dependencies) and in-place ``inout`` updates (local-bank mapped),
with bypass only at true last uses.  This is the benchmark where the
paper's TD-NUCA wins most (1.59x) while its replication *raises* LLC
dynamic energy above S-NUCA (Fig. 13).
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.deps import DepMode
from repro.mem.allocator import VirtualAllocator
from repro.runtime.task import AccessChunk, Dependency, Program, Task
from repro.workloads.base import TableIIRow, Workload, add_init_phase

__all__ = ["LU"]


class LU(Workload):
    name = "lu"
    paper = TableIIRow("LU", "2D Matrix N^2 = 9437184", 73.45, 1188, 318)
    compute_per_access = 4

    B = 15  # block dimension -> B + B(B-1) + sum k^2 = 1240 tasks
    PANEL_PASSES = 16
    #: read-modify-write passes over the inout block (gemm accumulates).
    INOUT_PASSES = 10

    def build(self, cfg: SystemConfig, seed: int = 0) -> Program:
        alloc = VirtualAllocator()
        total = self.scaled_input_bytes(cfg)
        nblocks = self.B * self.B
        cell_bytes = max(cfg.block_bytes * 4, total // nblocks)
        M = [
            [
                alloc.allocate(cell_bytes, f"M[{i},{j}]")
                for j in range(self.B)
            ]
            for i in range(self.B)
        ]

        prog = Program(self.name)
        phase = prog.new_phase()
        add_init_phase(
            prog, [M[i][j] for i in range(self.B) for j in range(self.B)], 15,
            self.compute_per_access,
        )
        cpa = self.compute_per_access
        pp = self.PANEL_PASSES
        for k in range(self.B):
            diag = M[k][k]
            phase.append(
                Task(
                    f"diag[{k}]",
                    (Dependency(diag, DepMode.INOUT),),
                    (AccessChunk(diag, True, self.INOUT_PASSES, rmw=True),),
                    compute_per_access=cpa,
                )
            )
            for i in range(k + 1, self.B):
                phase.append(
                    Task(
                        f"trsm_col[{k},{i}]",
                        (
                            Dependency(diag, DepMode.IN),
                            Dependency(M[i][k], DepMode.INOUT),
                        ),
                        (
                            AccessChunk(diag, False, pp),
                            AccessChunk(M[i][k], True, self.INOUT_PASSES, rmw=True),
                        ),
                        compute_per_access=cpa,
                    )
                )
            for j in range(k + 1, self.B):
                phase.append(
                    Task(
                        f"trsm_row[{k},{j}]",
                        (
                            Dependency(diag, DepMode.IN),
                            Dependency(M[k][j], DepMode.INOUT),
                        ),
                        (
                            AccessChunk(diag, False, pp),
                            AccessChunk(M[k][j], True, self.INOUT_PASSES, rmw=True),
                        ),
                        compute_per_access=cpa,
                    )
                )
            for i in range(k + 1, self.B):
                for j in range(k + 1, self.B):
                    phase.append(
                        Task(
                            f"gemm[{k},{i},{j}]",
                            (
                                Dependency(M[i][k], DepMode.IN),
                                Dependency(M[k][j], DepMode.IN),
                                Dependency(M[i][j], DepMode.INOUT),
                            ),
                            (
                                AccessChunk(M[i][k], False, pp),
                                AccessChunk(M[k][j], False, pp),
                                AccessChunk(M[i][j], True, self.INOUT_PASSES, rmw=True),
                            ),
                            compute_per_access=cpa,
                        )
                    )
        return prog
