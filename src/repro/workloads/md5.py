"""MD5 — independent buffer hashing (Table II row 7).

128 fully independent tasks, each streaming once through a private 4 MB
buffer and emitting a one-block digest.  The purest bypass workload: every
buffer's only use sees ``UseDesc = 0`` -> 100% of the data bypasses the
LLC, giving the paper's extreme 0.14x LLC-access figure.  Hashing is
compute-bound, so the per-access compute charge is high and the speedup
modest (1.04x).
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.deps import DepMode
from repro.mem.allocator import VirtualAllocator
from repro.runtime.task import Dependency, Program, Task
from repro.workloads.base import TableIIRow, Workload

__all__ = ["MD5"]


class MD5(Workload):
    name = "md5"
    paper = TableIIRow("MD5", "128 x 4MB buffers", 513.39, 128, 4096)
    compute_per_access = 600  # hash rounds dominate (~10 cycles/byte)

    BUFFERS = 128

    def build(self, cfg: SystemConfig, seed: int = 0) -> Program:
        alloc = VirtualAllocator()
        total = self.scaled_input_bytes(cfg)
        buf_bytes = max(cfg.block_bytes * 8, total // self.BUFFERS)
        prog = Program(self.name)
        phase = prog.new_phase()
        for i in range(self.BUFFERS):
            buf = alloc.allocate(buf_bytes, f"buf[{i}]")
            digest = alloc.allocate(cfg.block_bytes, f"digest[{i}]")
            phase.append(
                Task(
                    f"md5[{i}]",
                    (
                        Dependency(buf, DepMode.IN),
                        Dependency(digest, DepMode.OUT),
                    ),
                    compute_per_access=self.compute_per_access,
                )
            )
        return prog
