"""Redblack — red/black Gauss-Seidel relaxation (Table II row 8).

In-place single array, 8x4 grid of large cells; every iteration runs a
red half-sweep then a black half-sweep, each a taskwait phase of 32 tasks
(5 iterations x 2 colours = 10 phases, 320 tasks).  Each task updates one
colour of its own cell (``inout``) reading the opposite colour from its
neighbours' edge strips.

Like Jacobi, bulk interiors are single-user per phase with the next phase
not yet created -> bypassed at every use -> >97% NotReused, and the
biggest NoC-energy cut of the suite (0.55x, Fig. 14).
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.deps import DepMode
from repro.mem.allocator import VirtualAllocator
from repro.runtime.task import AccessChunk, Dependency, Program, Task
from repro.workloads.base import BlockedGrid, TableIIRow, Workload, add_init_phase

__all__ = ["Redblack"]


class Redblack(Workload):
    name = "redblack"
    paper = TableIIRow("Redblack", "N^2 = 28901376, 5 iters.", 223.96, 320, 3549)
    compute_per_access = 6

    NX, NY = 8, 4
    ITERATIONS = 5
    EDGE_PASSES = 3

    def build(self, cfg: SystemConfig, seed: int = 0) -> Program:
        alloc = VirtualAllocator()
        total = self.scaled_input_bytes(cfg)
        cells = self.NX * self.NY
        cell_bytes = max(cfg.block_bytes * 8, total // cells)
        grid = BlockedGrid(
            alloc,
            "rb",
            self.NX,
            self.NY,
            cell_bytes,
            max(cfg.block_bytes, cell_bytes // 64),
            cfg.block_bytes,
        )
        prog = Program(self.name)
        add_init_phase(
            prog,
            [grid.cell(i, j).whole for j in range(self.NY) for i in range(self.NX)],
            16,
            self.compute_per_access,
        )
        for it in range(self.ITERATIONS):
            for colour in ("red", "black"):
                phase = prog.new_phase()
                for j in range(self.NY):
                    for i in range(self.NX):
                        cell = grid.cell(i, j)
                        halo = grid.neighbor_edges(i, j)
                        deps = (
                            [Dependency(cell.interior, DepMode.INOUT)]
                            + [Dependency(e, DepMode.INOUT) for e in cell.edges()]
                            + [Dependency(h, DepMode.IN) for h in halo]
                        )
                        accesses = (
                            [AccessChunk(h, False, self.EDGE_PASSES) for h in halo]
                            + [
                                AccessChunk(e, False, self.EDGE_PASSES)
                                for e in cell.edges()
                            ]
                            + [AccessChunk(cell.interior, True, rmw=True)]
                            + [AccessChunk(e, True, rmw=True) for e in cell.edges()]
                        )
                        phase.append(
                            Task(
                                f"{colour}[{it}][{i},{j}]",
                                tuple(deps),
                                tuple(accesses),
                                compute_per_access=self.compute_per_access,
                            )
                        )
        return prog
