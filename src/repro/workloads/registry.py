"""Benchmark registry: name -> workload factory, in Table-II order.

``BENCHMARKS`` holds exactly the paper's eight evaluation benchmarks (the
figures iterate over it); ``EXTRA_WORKLOADS`` holds bonus workloads (the
paper's Fig.-2 Cholesky) available by name but excluded from the suite.
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.cholesky import Cholesky
from repro.workloads.gauss import Gauss
from repro.workloads.histo import Histo
from repro.workloads.jacobi import Jacobi
from repro.workloads.kmeans import Kmeans
from repro.workloads.knn import KNN
from repro.workloads.lu import LU
from repro.workloads.md5 import MD5
from repro.workloads.redblack import Redblack

__all__ = ["BENCHMARKS", "EXTRA_WORKLOADS", "get_workload", "workload_names"]

BENCHMARKS: dict[str, type[Workload]] = {
    cls.name: cls
    for cls in (Gauss, Histo, Jacobi, Kmeans, KNN, LU, MD5, Redblack)
}

EXTRA_WORKLOADS: dict[str, type[Workload]] = {Cholesky.name: Cholesky}


def workload_names(include_extra: bool = False) -> list[str]:
    """Benchmark names in Table-II order (optionally plus the extras)."""
    names = list(BENCHMARKS)
    if include_extra:
        names.extend(EXTRA_WORKLOADS)
    return names


def get_workload(name: str) -> Workload:
    """Instantiate a workload by (case-insensitive) name."""
    key = name.lower()
    cls = BENCHMARKS.get(key) or EXTRA_WORKLOADS.get(key)
    if cls is None:
        known = ", ".join(workload_names(include_extra=True))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}")
    return cls()
