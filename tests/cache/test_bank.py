"""Set-associative cache bank."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.bank import CacheBank


def make_bank(size=1024, assoc=4, block=64, repl="lru"):
    return CacheBank(size, assoc, block, repl)  # 4 sets with defaults


class TestConstruction:
    def test_geometry(self):
        b = make_bank()
        assert b.num_sets == 4

    def test_bad_size(self):
        with pytest.raises(ValueError):
            CacheBank(1000, 4, 64)

    def test_sets_power_of_two(self):
        with pytest.raises(ValueError):
            CacheBank(4 * 3 * 64, 4, 64)


class TestAccess:
    def test_cold_miss_then_hit(self):
        b = make_bank()
        assert not b.access(0, False).hit
        assert b.access(0, False).hit
        assert b.stats.misses == 1
        assert b.stats.hits == 1

    def test_read_write_hit_classification(self):
        b = make_bank()
        b.access(0, False)
        b.access(0, False)
        b.access(0, True)
        assert b.stats.read_hits == 1
        assert b.stats.write_hits == 1

    def test_set_mapping(self):
        b = make_bank()  # 4 sets: blocks 0 and 4 map to set 0
        assert b.set_index(0) == b.set_index(4)
        assert b.set_index(0) != b.set_index(1)

    def test_eviction_of_lru(self):
        b = make_bank()  # 4-way
        for blk in (0, 4, 8, 12):  # fill set 0
            b.access(blk, False)
        res = b.access(16, False)
        assert res.evicted == 0
        assert not res.evicted_dirty

    def test_dirty_eviction_flagged(self):
        b = make_bank()
        b.access(0, True)
        for blk in (4, 8, 12):
            b.access(blk, False)
        res = b.access(16, False)
        assert res.evicted == 0
        assert res.evicted_dirty
        assert b.stats.dirty_evictions == 1

    def test_write_marks_dirty(self):
        b = make_bank()
        b.access(0, False)
        assert not b.is_dirty(0)
        b.access(0, True)
        assert b.is_dirty(0)

    def test_occupancy_bounded(self):
        b = make_bank()
        for blk in range(100):
            b.access(blk, False)
        assert b.occupancy == 16  # 4 sets x 4 ways

    def test_resident_blocks(self):
        b = make_bank()
        b.access(3, False)
        b.access(7, True)
        assert sorted(b.resident_blocks()) == [3, 7]


class TestFill:
    def test_fill_does_not_count_demand_stats(self):
        b = make_bank()
        b.fill(0)
        assert b.stats.hits == 0 and b.stats.misses == 0
        assert b.contains(0)

    def test_fill_dirty(self):
        b = make_bank()
        b.fill(0, dirty=True)
        assert b.is_dirty(0)

    def test_fill_reports_eviction(self):
        b = make_bank()
        for blk in (0, 4, 8, 12):
            b.access(blk, True)
        res = b.fill(16)
        assert res.evicted == 0
        assert res.evicted_dirty


class TestInvalidate:
    def test_invalidate_present(self):
        b = make_bank()
        b.access(0, True)
        present, dirty = b.invalidate(0)
        assert present and dirty
        assert not b.contains(0)
        assert b.stats.invalidations == 1

    def test_invalidate_absent(self):
        b = make_bank()
        assert b.invalidate(0) == (False, False)

    def test_invalidated_way_reusable(self):
        b = make_bank()
        for blk in (0, 4, 8, 12):
            b.access(blk, False)
        b.invalidate(4)
        res = b.access(16, False)
        assert res.evicted is None  # reused the freed way

    def test_make_clean(self):
        b = make_bank()
        b.access(0, True)
        assert b.make_clean(0)
        assert not b.is_dirty(0)
        assert not b.make_clean(99)

    def test_flush_blocks(self):
        b = make_bank()
        b.access(0, True)
        b.access(1, False)
        flushed, dirty = b.flush_blocks([0, 1, 2])
        assert flushed == 2
        assert dirty == 1
        assert b.occupancy == 0

    def test_clear(self):
        b = make_bank()
        b.access(0, True)
        b.clear()
        assert b.occupancy == 0
        assert not b.contains(0)
        assert b.stats.misses == 1  # stats preserved


@given(st.lists(st.tuples(st.integers(0, 63), st.booleans()), max_size=300))
@settings(max_examples=50, deadline=None)
def test_bank_invariants(accesses):
    """Occupancy bound, hit/miss accounting, residency consistency."""
    b = CacheBank(512, 2, 64, "plru")  # 4 sets x 2 ways
    for blk, wr in accesses:
        res = b.access(blk, wr)
        if res.evicted is not None:
            assert not b.contains(res.evicted)
        assert b.contains(blk)
    assert b.occupancy <= 8
    assert b.stats.hits + b.stats.misses == len(accesses)
    resident = b.resident_blocks()
    assert len(resident) == len(set(resident))


@given(st.lists(st.integers(0, 31), max_size=200))
@settings(max_examples=50, deadline=None)
def test_lru_and_plru_agree_on_hits(blocks):
    """Replacement policy affects victims, never hit/miss of a just-touched
    block: a block is resident right after access under either policy."""
    lru = CacheBank(512, 4, 64, "lru")
    plru = CacheBank(512, 4, 64, "plru")
    for blk in blocks:
        lru.access(blk, False)
        plru.access(blk, False)
        assert lru.contains(blk) and plru.contains(blk)
    assert lru.occupancy == plru.occupancy or abs(lru.occupancy - plru.occupancy) == 0
