"""Coherence directory: MESI steady-state transitions."""

import pytest

from repro.cache.directory import CoherenceDirectory


def make_dir(cores=4):
    return CoherenceDirectory(cores)


class TestReads:
    def test_first_read_no_actions(self):
        d = make_dir()
        actions = d.on_l1_fill(0, 100, write=False)
        assert actions.invalidate == ()
        assert actions.writeback_from is None
        assert d.sharers(100) == [0]

    def test_multiple_readers_share(self):
        d = make_dir()
        d.on_l1_fill(0, 100, False)
        d.on_l1_fill(1, 100, False)
        d.on_l1_fill(3, 100, False)
        assert d.sharers(100) == [0, 1, 3]

    def test_read_after_remote_write_downgrades(self):
        d = make_dir()
        d.on_l1_fill(0, 100, True)
        actions = d.on_l1_fill(1, 100, False)
        assert actions.writeback_from == 0
        assert actions.invalidate == ()
        assert d.owner(100) is None  # downgraded to shared
        assert d.sharers(100) == [0, 1]
        assert d.stats.downgrades_sent == 1

    def test_read_by_owner_no_downgrade(self):
        d = make_dir()
        d.on_l1_fill(0, 100, True)
        actions = d.on_l1_fill(0, 100, False)
        assert actions.writeback_from is None
        assert d.owner(100) == 0


class TestWrites:
    def test_write_invalidates_sharers(self):
        d = make_dir()
        d.on_l1_fill(0, 100, False)
        d.on_l1_fill(1, 100, False)
        actions = d.on_l1_fill(2, 100, True)
        assert actions.invalidate == (0, 1)
        assert d.sharers(100) == [2]
        assert d.owner(100) == 2
        assert d.stats.invalidations_sent == 2

    def test_write_steals_ownership(self):
        d = make_dir()
        d.on_l1_fill(0, 100, True)
        actions = d.on_l1_fill(1, 100, True)
        assert actions.invalidate == (0,)
        assert actions.writeback_from == 0
        assert d.owner(100) == 1

    def test_exclusive_write_no_traffic(self):
        d = make_dir()
        d.on_l1_fill(0, 100, False)
        actions = d.on_l1_fill(0, 100, True)
        assert actions.invalidate == ()
        assert d.owner(100) == 0


class TestEviction:
    def test_evict_clears_presence(self):
        d = make_dir()
        d.on_l1_fill(0, 100, True)
        d.on_l1_evict(0, 100, dirty=True)
        assert d.sharers(100) == []
        assert d.owner(100) is None
        assert not d.is_tracked(100)

    def test_evict_one_of_many(self):
        d = make_dir()
        d.on_l1_fill(0, 100, False)
        d.on_l1_fill(1, 100, False)
        d.on_l1_evict(0, 100, dirty=False)
        assert d.sharers(100) == [1]

    def test_drop_block_returns_holders(self):
        d = make_dir()
        d.on_l1_fill(0, 100, False)
        d.on_l1_fill(2, 100, False)
        assert d.drop_block(100) == [0, 2]
        assert not d.is_tracked(100)

    def test_drop_untracked(self):
        assert make_dir().drop_block(55) == []


class TestBookkeeping:
    def test_entry_count_and_peak(self):
        d = make_dir()
        for blk in range(5):
            d.on_l1_fill(0, blk, False)
        assert d.entries == 5
        d.drop_block(0)
        assert d.entries == 4
        assert d.stats.entries_peak == 5

    def test_sharer_mask(self):
        d = make_dir()
        d.on_l1_fill(0, 1, False)
        d.on_l1_fill(2, 1, False)
        assert d.sharer_mask(1) == 0b101

    def test_bad_core_count(self):
        with pytest.raises(ValueError):
            CoherenceDirectory(0)
