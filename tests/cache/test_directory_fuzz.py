"""Randomized coherence fuzzing: the directory must stay consistent.

Thousands of randomly interleaved reads, writes and flushes from all
cores over a small, heavily contended block pool — maximum sharing,
upgrades, downgrades and back-invalidation churn.  After every burst the
machine-wide invariant checker must find nothing: every L1-resident line
tracked, every dirty line owned, inclusion preserved, occupancy balanced.
Seeds are fixed so a failure is exactly reproducible.
"""

import numpy as np
import pytest

from repro.faults.invariants import check_machine
from repro.nuca.base import FlushAction
from repro.sim.machine import build_machine
from tests.conftest import tiny_config

CFG = tiny_config()
ALL_CORES = tuple(range(CFG.num_cores))
ALL_BANKS = tuple(range(CFG.num_banks))


def _fuzz(seed: int, *, policy: str = "snuca", rounds: int = 30) -> None:
    rng = np.random.default_rng(seed)
    machine = build_machine(CFG, policy)
    # A pool small enough that cores constantly collide on blocks.
    pool = 512
    for _ in range(rounds):
        core = int(rng.integers(CFG.num_cores))
        op = rng.random()
        if op < 0.85:
            n = int(rng.integers(1, 64))
            blocks = rng.integers(0, pool, size=n)
            writes = rng.random(n) < 0.5
            machine._run_blocks(core, blocks.astype(np.int64), writes)
        else:
            # Flush a random slice from both levels; pairing L1 and LLC
            # keeps the inclusive hierarchy's contract intact.
            n = int(rng.integers(1, 32))
            blocks = tuple(int(b) for b in rng.integers(0, pool, size=n))
            machine._apply_flush_action(
                FlushAction(blocks, l1_cores=ALL_CORES, llc_banks=ALL_BANKS)
            )
        violations = check_machine(machine)
        assert violations == [], [str(v) for v in violations[:5]]


@pytest.mark.parametrize("seed", [0, 1, 2, 1234])
def test_fuzz_snuca(seed):
    _fuzz(seed)


@pytest.mark.parametrize("seed", [7, 99])
def test_fuzz_dnuca_migrations(seed):
    """D-NUCA adds block migration between banks to the interleaving."""
    _fuzz(seed, policy="dnuca")


def test_fuzz_with_mid_run_bank_death():
    """Coherence stays consistent when a bank dies amid the churn."""
    rng = np.random.default_rng(5)
    machine = build_machine(CFG, "snuca")
    for i in range(30):
        core = int(rng.integers(CFG.num_cores))
        blocks = rng.integers(0, 512, size=48)
        writes = rng.random(48) < 0.5
        machine._run_blocks(core, blocks.astype(np.int64), writes)
        if i == 10:
            machine.fail_bank(6)
        if i == 20:
            machine.fail_bank(11)
        violations = check_machine(machine)
        assert violations == [], [str(v) for v in violations[:5]]
