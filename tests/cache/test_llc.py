"""Banked NUCA LLC: per-bank isolation and replication support."""

import pytest

from repro.cache.llc import NucaLLC


def make_llc(banks=4):
    return NucaLLC(banks, 1024, 4, 64)


class TestBanks:
    def test_bank_isolation(self):
        llc = make_llc()
        llc.access(0, 42, False)
        assert llc.contains(0, 42)
        assert not llc.contains(1, 42)

    def test_bad_bank_count(self):
        with pytest.raises(ValueError):
            NucaLLC(0, 1024, 4, 64)

    def test_per_bank_stats(self):
        llc = make_llc()
        llc.access(0, 1, False)
        llc.access(0, 1, False)
        llc.access(1, 1, False)
        assert llc.banks[0].stats.hits == 1
        assert llc.banks[1].stats.hits == 0

    def test_aggregate_stats(self):
        llc = make_llc()
        llc.access(0, 1, False)
        llc.access(1, 2, False)
        agg = llc.aggregate_stats()
        assert agg.misses == 2
        assert agg.accesses == 2

    def test_occupancy(self):
        llc = make_llc()
        llc.access(0, 1, False)
        llc.access(2, 9, False)
        assert llc.occupancy == 2


class TestReplication:
    def test_same_block_in_multiple_banks(self):
        llc = make_llc()
        for bank in (0, 1, 3):
            llc.access(bank, 7, False)
        assert llc.banks_holding(7) == [0, 1, 3]

    def test_invalidate_everywhere(self):
        llc = make_llc()
        llc.access(0, 7, True)
        llc.access(2, 7, False)
        copies, dirty = llc.invalidate_everywhere(7)
        assert copies == 2
        assert dirty == 1
        assert llc.banks_holding(7) == []

    def test_flush_blocks_single_bank(self):
        llc = make_llc()
        llc.access(0, 7, True)
        llc.access(1, 7, False)
        flushed, dirty = llc.flush_blocks(0, [7])
        assert (flushed, dirty) == (1, 1)
        assert llc.banks_holding(7) == [1]

    def test_clear(self):
        llc = make_llc()
        llc.access(0, 7, False)
        llc.clear()
        assert llc.occupancy == 0
