"""Replacement policies: true LRU as a reference, tree PLRU properties."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.replacement import LRUState, TreePLRUState, make_replacement


class TestLRU:
    def test_initial_victim(self):
        assert LRUState(4).victim() == 0

    def test_exact_lru_order(self):
        lru = LRUState(4)
        for w in (0, 1, 2, 3):
            lru.touch(w)
        assert lru.victim() == 0
        lru.touch(0)
        assert lru.victim() == 1

    def test_reset(self):
        lru = LRUState(4)
        lru.touch(3)
        lru.reset()
        assert lru.victim() == 0

    def test_bad_way(self):
        with pytest.raises(ValueError):
            LRUState(4).touch(4)


class TestTreePLRU:
    def test_victim_never_most_recent(self):
        plru = TreePLRUState(8)
        for w in range(8):
            plru.touch(w)
            assert plru.victim() != w

    def test_fills_all_ways_before_repeating(self):
        # Touching the victim each time must cycle through all ways.
        plru = TreePLRUState(8)
        seen = set()
        for _ in range(8):
            v = plru.victim()
            seen.add(v)
            plru.touch(v)
        assert seen == set(range(8))

    def test_two_way_is_exact_lru(self):
        plru = TreePLRUState(2)
        plru.touch(0)
        assert plru.victim() == 1
        plru.touch(1)
        assert plru.victim() == 0

    @given(st.lists(st.integers(0, 7), max_size=64))
    def test_victim_in_range(self, touches):
        plru = TreePLRUState(8)
        for w in touches:
            plru.touch(w)
        assert 0 <= plru.victim() < 8

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=64))
    def test_last_touched_protected(self, touches):
        plru = TreePLRUState(16)
        for w in touches:
            plru.touch(w)
        assert plru.victim() != touches[-1]

    def test_reset(self):
        plru = TreePLRUState(4)
        plru.touch(0)
        plru.reset()
        assert plru.victim() == 0

    @pytest.mark.parametrize("assoc", [3, 0, -2])
    def test_non_power_of_two_rejected(self, assoc):
        with pytest.raises(ValueError):
            TreePLRUState(assoc)


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_replacement("plru", 8), TreePLRUState)
        assert isinstance(make_replacement("lru", 8), LRUState)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_replacement("random", 8)
