"""Chaos suite: the service under deterministic fault injection.

Run with ``pytest -m chaos`` (excluded from the default tier-1 run by
``addopts``).  Everything here drives real spawn-isolated workers through
the failpoint registry and holds the service to the ISSUE's acceptance
bar:

* kill -9 mid-job on **every** golden configuration -> the service
  returns byte-identical stats to an uninjected in-process run;
* a repeatedly-crashing job is quarantined as poison while concurrent
  healthy jobs keep completing;
* drain stays bounded while a worker is wedged mid-job.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro import failpoints
from repro.api import Session
from repro.experiments.golden import GOLDEN_CASES
from repro.service.cache import ResultCache
from repro.service.queue import JobQueue, RunSpec

pytestmark = pytest.mark.chaos

#: golden snapshots run at 1/1024 scale; the service takes scale as a
#: divisor, so this is the same config as GoldenCase.config().
GOLDEN_SERVICE_SCALE = 1024


@pytest.fixture(autouse=True)
def _clean_failpoints():
    failpoints.reset()
    yield
    failpoints.reset()


async def _wait_settled(job, timeout=300.0):
    deadline = time.monotonic() + timeout
    while job.state not in ("done", "failed", "preempted"):
        assert time.monotonic() < deadline, f"job stuck in {job.state!r}"
        await asyncio.sleep(0.01)
    return job


def make_queue(tmp_path, **kw):
    kw.setdefault("workers", 1)
    kw.setdefault("spool_dir", tmp_path / "spool")
    kw.setdefault("cache", ResultCache(tmp_path / "cache"))
    kw.setdefault("backoff", 0.0)
    return JobQueue(**kw)


def submit_and_settle(queue, specs, timeout=300.0):
    async def go():
        await queue.start()
        jobs = [queue.submit(s) for s in specs]
        for job in jobs:
            await _wait_settled(job, timeout=timeout)
        await queue.drain(grace=0.5)
        return jobs

    return asyncio.run(go())


@pytest.mark.parametrize(
    "case", GOLDEN_CASES, ids=[c.case_id for c in GOLDEN_CASES]
)
def test_kill9_mid_job_is_byte_identical_on_every_golden_case(
    case, tmp_path
):
    # Uninjected reference, in this process.
    reference = (
        Session(case.config(), seed=case.seed)
        .run(case.workload, case.policy)
        .stats_dict()
    )

    # Service run with the worker SIGKILLed at the first task boundary
    # >= 8 of the first attempt; checkpoint_every=4 guarantees a resume
    # point below the crash.
    failpoints.configure("worker.crash=*@attempt:1@task_ge:8")
    queue = make_queue(tmp_path, checkpoint_every=4, retries=1)
    spec = RunSpec(
        case.workload,
        case.policy,
        seed=case.seed,
        scale=GOLDEN_SERVICE_SCALE,
        faults=case.fault_spec,
    )
    (job,) = submit_and_settle(queue, [spec])

    assert job.state == "done", job.error
    assert job.worker_deaths == 1
    assert job.attempts == 2
    assert job.resumed_from_task is not None
    assert json.dumps(job.result, sort_keys=True) == json.dumps(
        reference, sort_keys=True
    ), f"{case.case_id}: crash+resume diverged from the uninjected run"


def test_poison_job_quarantined_while_healthy_jobs_complete(tmp_path):
    # Every worker that picks up histo/tdnuca dies; kmeans is untouched.
    failpoints.configure("worker.crash=*@job:histo/tdnuca@task_ge:4")
    reference = Session(
        RunSpec("kmeans", "tdnuca", scale=GOLDEN_SERVICE_SCALE).config()
    ).run("kmeans", "tdnuca").stats_dict()

    queue = make_queue(
        tmp_path, workers=2, retries=5, poison_after=3, checkpoint_every=4
    )

    async def go():
        await queue.start()
        poison = queue.submit(
            RunSpec("histo", "tdnuca", scale=GOLDEN_SERVICE_SCALE)
        )
        healthy = queue.submit(
            RunSpec("kmeans", "tdnuca", scale=GOLDEN_SERVICE_SCALE)
        )
        await _wait_settled(poison)
        await _wait_settled(healthy)
        # The server keeps serving after the quarantine.
        late = queue.submit(
            RunSpec("jacobi", "tdnuca", scale=GOLDEN_SERVICE_SCALE)
        )
        await _wait_settled(late)
        await queue.drain(grace=0.5)
        return poison, healthy, late

    poison, healthy, late = asyncio.run(go())
    assert poison.state == "failed"
    assert poison.error["type"] == "poisoned"
    assert poison.worker_deaths == 3
    assert (queue.spool / "poison").glob("*.json")
    assert healthy.state == "done"
    assert json.dumps(healthy.result, sort_keys=True) == json.dumps(
        reference, sort_keys=True
    )
    assert late.state == "done"
    assert queue.stats()["poisoned"] == 1


def test_drain_is_bounded_while_a_worker_is_wedged(tmp_path):
    # The worker wedges for 60 s at a task boundary and the lease is too
    # generous to save us — drain must still come back within its grace
    # by force-killing the attempt, not join on the hung worker.
    failpoints.configure("worker.hang=*@task_ge:4@param:60")
    queue = make_queue(tmp_path, lease_timeout=300.0, checkpoint_every=4)

    async def go():
        await queue.start()
        job = queue.submit(RunSpec("md5", "tdnuca", scale=2048))
        # Let the worker reach the wedge point.
        deadline = time.monotonic() + 30.0
        while not queue.pool.stats()["busy"]:
            assert time.monotonic() < deadline
            await asyncio.sleep(0.02)
        await asyncio.sleep(0.5)
        t0 = time.monotonic()
        await queue.drain(grace=1.0)
        return job, time.monotonic() - t0

    job, wall = asyncio.run(go())
    assert wall < 15.0, f"drain took {wall:.1f}s against a wedged worker"
    assert job.state in ("preempted", "queued", "failed")
    assert queue.pool.stats()["alive"] == 0, "wedged worker left running"


def test_drain_stall_failpoint_delays_but_completes(tmp_path):
    failpoints.configure("queue.drain.stall=1@param:0.3")
    queue = make_queue(tmp_path)

    async def go():
        await queue.start()
        t0 = time.monotonic()
        await queue.drain(grace=0.5)
        return time.monotonic() - t0

    wall = asyncio.run(go())
    assert 0.3 <= wall < 10.0
