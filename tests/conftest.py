"""Shared fixtures: tiny machine configurations that keep unit tests fast."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import LatencyConfig, SystemConfig
from repro.mem.address import AddressMap
from repro.noc.topology import Mesh


def tiny_config(**overrides) -> SystemConfig:
    """A 16-tile machine with very small caches (fast to fill/evict)."""
    base = SystemConfig(
        l1_bytes=1024,  # 16 blocks, 8-way -> 2 sets
        llc_bank_bytes=4096,  # 64 blocks/bank
        page_bytes=512,
        nondep_blocks_per_task=0,
    )
    return replace(base, **overrides) if overrides else base


@pytest.fixture
def cfg() -> SystemConfig:
    return tiny_config()


@pytest.fixture
def amap(cfg) -> AddressMap:
    return AddressMap(cfg.block_bytes, cfg.page_bytes, cfg.physical_address_bits)


@pytest.fixture
def mesh(cfg) -> Mesh:
    return Mesh(cfg.mesh_width, cfg.mesh_height, cfg.cluster_width, cfg.cluster_height)


@pytest.fixture
def latency() -> LatencyConfig:
    return LatencyConfig()
