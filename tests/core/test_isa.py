"""The three TD-NUCA ISA instructions and the flush-completion register."""

import pytest

from repro.config import LatencyConfig
from repro.core.isa import FlushCompletionRegister, TdNucaISA
from repro.core.rrt import RRT
from repro.mem.address import AddressMap
from repro.mem.pagetable import PageTable
from repro.mem.region import Region
from repro.mem.tlb import TLB

AMAP = AddressMap(64, 512)
NCORES = 4


def make_isa(fragmentation=0.0, rrt_capacity=64):
    pt = PageTable(AMAP, fragmentation, seed=1)
    tlbs = [TLB(pt, 16) for _ in range(NCORES)]
    rrts = [RRT(c, rrt_capacity) for c in range(NCORES)]
    isa = TdNucaISA(AMAP, tlbs, rrts, LatencyConfig())
    calls = []

    def executor(blocks, level, tiles):
        calls.append((tuple(blocks), level, tiles))
        return len(blocks), len(blocks) // 2

    isa.flush_executor = executor
    return isa, pt, calls


class TestRegister:
    def test_registers_translated_range(self):
        isa, pt, _ = make_isa()
        region = Region(0x1000, 0x400)
        cycles = isa.tdnuca_register(0, region, 0b11)
        assert cycles > 0
        paddr = pt.translate(0x1000)
        assert isa.rrts[0].lookup(paddr) == 0b11
        assert isa.rrts[1].lookup(paddr) is None  # other cores untouched

    def test_partial_blocks_excluded(self):
        """Section III-D: unaligned first/last cache blocks are left out."""
        isa, pt, _ = make_isa()
        region = Region(0x1010, 0x100)  # starts mid-block
        isa.tdnuca_register(0, region, 1)
        rrt = isa.rrts[0]
        assert rrt.lookup(pt.translate(0x1010)) is None  # partial first block
        assert rrt.lookup(pt.translate(0x1040)) == 1  # first full block

    def test_sub_block_region_is_noop(self):
        isa, _, _ = make_isa()
        cycles = isa.tdnuca_register(0, Region(0x1001, 0x20), 1)
        assert cycles == TdNucaISA.ISSUE_CYCLES
        assert isa.rrts[0].occupancy == 0

    def test_contiguous_pages_collapse_to_one_entry(self):
        isa, _, _ = make_isa(fragmentation=0.0)
        isa.tdnuca_register(0, Region(0x1000, 4 * 512), 1)
        assert isa.rrts[0].occupancy == 1

    def test_fragmented_pages_need_multiple_entries(self):
        isa, _, _ = make_isa(fragmentation=1.0)
        isa.tdnuca_register(0, Region(0x1000, 4 * 512), 1)
        assert isa.rrts[0].occupancy == 4

    def test_tlb_walk_counted(self):
        isa, _, _ = make_isa()
        isa.tdnuca_register(0, Region(0x1000, 4 * 512), 1)
        assert isa.stats.translation_tlb_accesses == 4
        assert isa.tlbs[0].stats.accesses == 4

    def test_cycles_grow_with_pages(self):
        isa, _, _ = make_isa()
        c1 = isa.tdnuca_register(0, Region(0x1000, 512), 1)
        c8 = isa.tdnuca_register(1, Region(0x9000, 8 * 512), 1)
        assert c8 > c1


class TestInvalidate:
    def test_invalidate_masked_cores_only(self):
        isa, pt, _ = make_isa()
        region = Region(0x1000, 0x400)
        for core in range(NCORES):
            isa.tdnuca_register(core, region, 1)
        isa.tdnuca_invalidate(0, region, core_mask=0b0101)
        paddr = pt.translate(0x1000)
        assert isa.rrts[0].lookup(paddr) is None
        assert isa.rrts[1].lookup(paddr) == 1
        assert isa.rrts[2].lookup(paddr) is None
        assert isa.rrts[3].lookup(paddr) == 1

    def test_stats(self):
        isa, _, _ = make_isa()
        isa.tdnuca_invalidate(0, Region(0x1000, 0x400), 0b1111)
        assert isa.stats.invalidates_executed == 1
        assert isa.stats.invalidate_cycles > 0


class TestFlush:
    def test_flush_calls_executor_with_blocks(self):
        isa, pt, calls = make_isa()
        region = Region(0x1000, 0x200)  # 8 blocks
        outcome = isa.tdnuca_flush(0, region, "l1", core_mask=0b10)
        assert len(calls) == 1
        blocks, level, tiles = calls[0]
        assert level == "l1"
        assert tiles == (1,)
        assert len(blocks) == 8
        assert pt.translate(0x1000) >> AMAP.block_shift in blocks
        assert outcome.flushed == 8
        assert outcome.dirty == 4

    def test_flush_llc_level(self):
        isa, _, calls = make_isa()
        isa.tdnuca_flush(0, Region(0x1000, 0x200), "llc", 0b1)
        assert calls[0][1] == "llc"

    def test_bad_level(self):
        isa, _, _ = make_isa()
        with pytest.raises(ValueError):
            isa.tdnuca_flush(0, Region(0x1000, 0x200), "l2", 1)

    def test_no_executor_installed(self):
        isa, _, _ = make_isa()
        isa.flush_executor = None
        with pytest.raises(RuntimeError):
            isa.tdnuca_flush(0, Region(0x1000, 0x200), "l1", 1)

    def test_flush_cycles_scale_with_blocks(self):
        isa, _, _ = make_isa()
        small = isa.tdnuca_flush(0, Region(0x1000, 0x100), "l1", 1).cycles
        large = isa.tdnuca_flush(0, Region(0x4000, 0x1000), "l1", 1).cycles
        assert large > small

    def test_flush_stats(self):
        isa, _, _ = make_isa()
        isa.tdnuca_flush(0, Region(0x1000, 0x200), "l1", 1)
        assert isa.stats.flushes_executed == 1
        assert isa.stats.blocks_flushed == 8
        assert isa.stats.dirty_blocks_flushed == 4

    def test_completion_register_cycled(self):
        isa, _, _ = make_isa()
        isa.tdnuca_flush(2, Region(0x1000, 0x200), "l1", 1)
        assert not isa.completion.is_pending(2)
        assert isa.completion.polls == 1


class TestCompletionRegister:
    def test_bit_protocol(self):
        reg = FlushCompletionRegister(4)
        reg.start(2)
        assert reg.is_pending(2)
        assert reg.poll() == 0b100
        reg.complete(2)
        assert reg.poll() == 0
        assert reg.polls == 2

    def test_multiple_cores(self):
        reg = FlushCompletionRegister(4)
        reg.start(0)
        reg.start(3)
        assert reg.poll() == 0b1001
        reg.complete(0)
        assert reg.poll() == 0b1000

    def test_out_of_range(self):
        reg = FlushCompletionRegister(4)
        with pytest.raises(ValueError):
            reg.start(4)
