"""The Fig.-7 placement decision."""

import pytest

from repro.core.policy import PlacementKind, bank_mask_of, decide_placement
from repro.core.rtdirectory import DependencyEntry
from repro.deps import DepMode
from repro.noc.topology import Mesh

MESH = Mesh(4, 4)


def entry(use_desc):
    return DependencyEntry(0x1000, 0x800, use_desc=use_desc)


class TestBankMaskOf:
    def test_build(self):
        assert bank_mask_of([0, 1, 4, 5]) == 0b110011
        assert bank_mask_of([]) == 0

    def test_negative(self):
        with pytest.raises(ValueError):
            bank_mask_of([-1])


class TestFig7Flowchart:
    def test_no_future_use_bypasses(self):
        """UseDesc == 0 -> LLC bypass, regardless of mode."""
        for mode in DepMode:
            p = decide_placement(entry(0), mode, 3, MESH)
            assert p.kind is PlacementKind.BYPASS
            assert p.bank_mask == 0
            assert p.banks == ()

    @pytest.mark.parametrize("mode", [DepMode.OUT, DepMode.INOUT])
    def test_writable_maps_to_local_bank(self, mode):
        p = decide_placement(entry(2), mode, 7, MESH)
        assert p.kind is PlacementKind.LOCAL_BANK
        assert p.banks == (7,)
        assert p.bank_mask == 1 << 7

    def test_reused_input_replicates_in_local_cluster(self):
        p = decide_placement(entry(5), DepMode.IN, 10, MESH)
        assert p.kind is PlacementKind.CLUSTER_REPLICATE
        assert p.banks == MESH.local_cluster_tiles(10)
        assert bin(p.bank_mask).count("1") == 4

    def test_cluster_mask_matches_banks(self):
        p = decide_placement(entry(1), DepMode.IN, 0, MESH)
        assert p.bank_mask == bank_mask_of(p.banks)

    def test_negative_use_desc_rejected(self):
        with pytest.raises(ValueError):
            decide_placement(entry(-1), DepMode.IN, 0, MESH)


class TestBypassOnlyVariant:
    """Section V-D: the variant only applies the bypass rule."""

    def test_bypass_still_applies(self):
        p = decide_placement(entry(0), DepMode.IN, 0, MESH, bypass_only=True)
        assert p.kind is PlacementKind.BYPASS

    @pytest.mark.parametrize("mode", list(DepMode))
    def test_reused_deps_untracked(self, mode):
        p = decide_placement(entry(3), mode, 0, MESH, bypass_only=True)
        assert p.kind is PlacementKind.UNTRACKED
        assert p.bank_mask == 0


class TestDepMode:
    def test_reads_writes(self):
        assert DepMode.IN.reads and not DepMode.IN.writes
        assert DepMode.OUT.writes and not DepMode.OUT.reads
        assert DepMode.INOUT.reads and DepMode.INOUT.writes
