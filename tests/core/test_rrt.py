"""Runtime Region Table: range lookups, capacity, invalidation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rrt import RRT, decode_bank_mask


class TestDecodeBankMask:
    def test_empty(self):
        assert decode_bank_mask(0) == ()

    def test_single(self):
        assert decode_bank_mask(1 << 7) == (7,)

    def test_cluster(self):
        assert decode_bank_mask(0b110011) == (0, 1, 4, 5)

    def test_negative(self):
        with pytest.raises(ValueError):
            decode_bank_mask(-1)


class TestRegisterLookup:
    def test_basic_roundtrip(self):
        rrt = RRT(0)
        assert rrt.register(0x1000, 0x2000, 0b1)
        assert rrt.lookup(0x1000) == 0b1
        assert rrt.lookup(0x1FFF) == 0b1
        assert rrt.lookup(0x2000) is None
        assert rrt.lookup(0xFFF) is None

    def test_zero_mask_is_valid_bypass(self):
        rrt = RRT(0)
        rrt.register(0x1000, 0x2000, 0)
        assert rrt.lookup(0x1800) == 0

    def test_multiple_disjoint_entries(self):
        rrt = RRT(0)
        rrt.register(0x1000, 0x2000, 1)
        rrt.register(0x3000, 0x4000, 2)
        rrt.register(0x2000, 0x3000, 4)  # adjacent both sides
        assert rrt.lookup(0x1800) == 1
        assert rrt.lookup(0x2800) == 4
        assert rrt.lookup(0x3800) == 2

    def test_bad_range(self):
        with pytest.raises(ValueError):
            RRT(0).register(0x2000, 0x1000, 1)
        with pytest.raises(ValueError):
            RRT(0).register(0x1000, 0x1000, 1)

    def test_idempotent_reregistration(self):
        rrt = RRT(0)
        rrt.register(0x1000, 0x2000, 1)
        rrt.register(0x1000, 0x2000, 1)
        assert rrt.occupancy == 1
        assert rrt.stats.registrations == 2

    def test_overlapping_registration_replaces(self):
        rrt = RRT(0)
        rrt.register(0x1000, 0x3000, 1)
        rrt.register(0x2000, 0x4000, 2)
        assert rrt.lookup(0x1800) is None  # old entry replaced wholesale
        assert rrt.lookup(0x2800) == 2
        assert rrt.occupancy == 1

    def test_stats(self):
        rrt = RRT(0)
        rrt.register(0x1000, 0x2000, 1)
        rrt.lookup(0x1800)
        rrt.lookup(0x9000)
        assert rrt.stats.lookups == 2
        assert rrt.stats.hits == 1
        assert rrt.stats.peak_occupancy == 1


class TestCapacity:
    def test_no_replacement_on_full(self):
        """Paper Section III-B2: full table drops new ranges, never evicts."""
        rrt = RRT(0, capacity=2)
        rrt.register(0x1000, 0x2000, 1)
        rrt.register(0x3000, 0x4000, 2)
        assert not rrt.register(0x5000, 0x6000, 3)
        assert rrt.stats.drops_full == 1
        # Old entries intact, new range untracked (S-NUCA fallback).
        assert rrt.lookup(0x1800) == 1
        assert rrt.lookup(0x5800) is None

    def test_invalidate_frees_capacity(self):
        rrt = RRT(0, capacity=1)
        rrt.register(0x1000, 0x2000, 1)
        rrt.invalidate(0x1000, 0x2000)
        assert rrt.register(0x5000, 0x6000, 3)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            RRT(0, capacity=0)


class TestInvalidate:
    def test_exact(self):
        rrt = RRT(0)
        rrt.register(0x1000, 0x2000, 1)
        assert rrt.invalidate(0x1000, 0x2000) == 1
        assert rrt.lookup(0x1800) is None

    def test_partial_overlap_removes_entry(self):
        rrt = RRT(0)
        rrt.register(0x1000, 0x3000, 1)
        assert rrt.invalidate(0x2000, 0x2800) == 1
        assert rrt.lookup(0x1800) is None

    def test_adjacent_entries_untouched(self):
        """Regression: invalidating [a,b) must not stop at an adjacent
        entry starting exactly at b (the bisect_right off-by-one that let
        RRTs silently fill with dead entries)."""
        rrt = RRT(0)
        rrt.register(0x1000, 0x2000, 1)
        rrt.register(0x2000, 0x3000, 2)  # adjacent after
        rrt.register(0x0800, 0x1000, 3)  # adjacent before
        assert rrt.invalidate(0x1000, 0x2000) == 1
        assert rrt.lookup(0x1800) is None
        assert rrt.lookup(0x2800) == 2
        assert rrt.lookup(0x0900) == 3

    def test_empty_range_noop(self):
        rrt = RRT(0)
        rrt.register(0x1000, 0x2000, 1)
        assert rrt.invalidate(0x1000, 0x1000) == 0

    def test_missing_range_noop(self):
        assert RRT(0).invalidate(0x1000, 0x2000) == 0


class TestProcessTagging:
    def test_pid_isolation(self):
        rrt = RRT(0)
        rrt.set_active_pid(1)
        rrt.register(0x1000, 0x2000, 1)
        rrt.set_active_pid(2)
        assert rrt.lookup(0x1800) is None
        rrt.set_active_pid(1)
        assert rrt.lookup(0x1800) == 1

    def test_shared_capacity_across_pids(self):
        rrt = RRT(0, capacity=2)
        rrt.set_active_pid(1)
        rrt.register(0x1000, 0x2000, 1)
        rrt.set_active_pid(2)
        rrt.register(0x1000, 0x2000, 2)
        assert not rrt.register(0x3000, 0x4000, 3)

    def test_drop_pid(self):
        rrt = RRT(0)
        rrt.set_active_pid(1)
        rrt.register(0x1000, 0x2000, 1)
        assert rrt.drop_pid(1) == 1
        assert rrt.occupancy == 0

    def test_migrate(self):
        """Thread migration moves RRT entries to the destination core."""
        a, b = RRT(0), RRT(1)
        a.register(0x1000, 0x2000, 1)
        a.register(0x3000, 0x4000, 2)
        assert a.migrate_to(b) == 2
        assert a.occupancy == 0
        assert b.lookup(0x1800) == 1
        assert b.lookup(0x3800) == 2

    def test_migrate_respects_capacity(self):
        a, b = RRT(0), RRT(1, capacity=1)
        a.register(0x1000, 0x2000, 1)
        a.register(0x3000, 0x4000, 2)
        assert a.migrate_to(b) == 1


ranges = st.lists(
    st.tuples(st.integers(0, 100), st.integers(1, 20), st.integers(0, 0xFFFF)),
    max_size=40,
)


@given(ranges, st.lists(st.integers(0, 130), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_lookup_matches_reference_model(ops, probes):
    """RRT lookups agree with a brute-force list of live ranges."""
    rrt = RRT(0, capacity=1000)
    live: list[tuple[int, int, int]] = []
    for start, size, mask in ops:
        end = start + size
        # Reference semantics: registration removes overlapped entries.
        live = [e for e in live if not (e[0] < end and start < e[1])]
        live.append((start, end, mask))
        rrt.register(start, end, mask)
    for p in probes:
        expected = next((m for s, e, m in live if s <= p < e), None)
        assert rrt.lookup(p) == expected
