"""RTCacheDirectory: UseDesc lifecycle."""

import pytest

from repro.core.rtdirectory import RTCacheDirectory
from repro.mem.region import Region

R1 = Region(0x1000, 0x800, "a")
R2 = Region(0x2000, 0x800, "b")


class TestEntries:
    def test_entry_created_on_demand(self):
        d = RTCacheDirectory()
        e = d.entry(R1)
        assert (e.start, e.size) == (R1.start, R1.size)
        assert e.use_desc == 0
        assert e.map_mask == 0
        assert len(d) == 1

    def test_entry_reused_for_same_region(self):
        d = RTCacheDirectory()
        assert d.entry(R1) is d.entry(Region(0x1000, 0x800, "other-name"))

    def test_distinct_regions_distinct_entries(self):
        d = RTCacheDirectory()
        assert d.entry(R1) is not d.entry(R2)

    def test_get_without_create(self):
        d = RTCacheDirectory()
        assert d.get(R1) is None
        d.entry(R1)
        assert d.get(R1) is not None

    def test_region_roundtrip(self):
        d = RTCacheDirectory()
        assert d.entry(R1).region == Region(0x1000, 0x800)


class TestUseDesc:
    def test_inc_dec(self):
        d = RTCacheDirectory()
        d.inc_use(R1)
        d.inc_use(R1)
        assert d.entry(R1).use_desc == 2
        d.dec_use(R1)
        assert d.entry(R1).use_desc == 1

    def test_underflow_raises(self):
        d = RTCacheDirectory()
        with pytest.raises(RuntimeError):
            d.dec_use(R1)

    def test_total_outstanding(self):
        d = RTCacheDirectory()
        d.inc_use(R1)
        d.inc_use(R2)
        d.inc_use(R2)
        assert d.total_outstanding_uses() == 3
        d.dec_use(R2)
        assert d.total_outstanding_uses() == 2

    def test_iteration(self):
        d = RTCacheDirectory()
        d.inc_use(R1)
        d.inc_use(R2)
        assert {e.start for e in d} == {R1.start, R2.start}
