"""TD-NUCA bank resolution through the RRTs."""

import pytest

from repro.core.rrt import RRT
from repro.core.tdnuca import TdNucaPolicy
from repro.mem.address import AddressMap
from repro.noc.topology import Mesh
from repro.nuca.base import BYPASS

AMAP = AddressMap(64, 512)
MESH = Mesh(4, 4)


def make_policy(lookup_cycles=1):
    rrts = [RRT(c) for c in range(16)]
    return TdNucaPolicy(MESH, AMAP, rrts, lookup_cycles), rrts


def register_blocks(rrt, first_block, nblocks, mask):
    rrt.register(first_block * 64, (first_block + nblocks) * 64, mask)


class TestResolution:
    def test_unregistered_falls_back_to_interleave(self):
        p, _ = make_policy()
        for blk in range(32):
            assert p.bank_for(0, blk, False) == blk % 16

    def test_zero_mask_bypasses(self):
        p, rrts = make_policy()
        register_blocks(rrts[2], 100, 4, 0)
        assert p.bank_for(2, 101, False) == BYPASS
        assert p.stats.bypasses == 1

    def test_single_bit_routes_to_bank(self):
        p, rrts = make_policy()
        register_blocks(rrts[0], 100, 4, 1 << 9)
        for blk in range(100, 104):
            assert p.bank_for(0, blk, True) == 9

    def test_cluster_mask_spreads_by_block(self):
        p, rrts = make_policy()
        mask = 0b110011  # cluster {0,1,4,5}
        register_blocks(rrts[0], 100, 8, mask)
        banks = [p.bank_for(0, blk, False) for blk in range(100, 104)]
        assert sorted(banks) == [0, 1, 4, 5]
        # Deterministic rotation: same block -> same bank.
        assert p.bank_for(0, 100, False) == banks[0]

    def test_per_core_rrts_independent(self):
        p, rrts = make_policy()
        register_blocks(rrts[0], 100, 4, 0)
        assert p.bank_for(0, 100, False) == BYPASS
        assert p.bank_for(1, 100, False) == 100 % 16

    def test_lookup_cycles_exposed(self):
        p, _ = make_policy(lookup_cycles=3)
        assert p.lookup_cycles == 3


class TestValidation:
    def test_rrt_count_must_match(self):
        with pytest.raises(ValueError):
            TdNucaPolicy(MESH, AMAP, [RRT(0)])
