"""Energy tally and breakdown."""

import pytest

from repro.config import EnergyConfig
from repro.energy.model import EnergyTally

CFG = EnergyConfig()


class TestEvents:
    def test_hit_read(self):
        t = EnergyTally()
        t.llc_hit_read()
        assert t.llc_tag_probes == 1
        assert t.llc_data_reads == 1

    def test_hit_write(self):
        t = EnergyTally()
        t.llc_hit_write()
        assert t.llc_data_writes == 1

    def test_miss_fill_writes_data_array(self):
        t = EnergyTally()
        t.llc_miss_fill()
        assert t.llc_tag_probes == 1
        assert t.llc_data_writes == 1

    def test_probe_batch(self):
        t = EnergyTally()
        t.llc_probe(10)
        assert t.llc_tag_probes == 10

    def test_victim_read(self):
        t = EnergyTally()
        t.llc_victim_read()
        assert t.llc_data_reads == 1


class TestBreakdown:
    def test_llc_energy(self):
        t = EnergyTally()
        t.llc_hit_read()
        t.llc_hit_write()
        bd = t.breakdown(CFG, flit_hops=0)
        expected = 2 * CFG.llc_tag_probe + CFG.llc_read + CFG.llc_write
        assert bd.llc == pytest.approx(expected)

    def test_noc_energy_from_flit_hops(self):
        t = EnergyTally()
        bd = t.breakdown(CFG, flit_hops=100)
        assert bd.noc == pytest.approx(100 * CFG.noc_per_flit_hop)

    def test_dram_energy(self):
        t = EnergyTally()
        t.dram_accesses = 5
        assert t.breakdown(CFG, 0).dram == pytest.approx(5 * CFG.dram_access)

    def test_rrt_energy_uses_tcam_factor(self):
        t = EnergyTally()
        t.rrt_lookups = 100
        assert t.breakdown(CFG, 0).rrt == pytest.approx(
            100 * CFG.rrt_sram_lookup * CFG.rrt_tcam_factor
        )

    def test_total(self):
        t = EnergyTally()
        t.llc_hit_read()
        t.dram_accesses = 1
        t.l1_accesses = 1
        bd = t.breakdown(CFG, 10)
        assert bd.total == pytest.approx(bd.llc + bd.noc + bd.dram + bd.l1 + bd.rrt)


class TestMerge:
    def test_merge(self):
        a, b = EnergyTally(), EnergyTally()
        a.llc_hit_read()
        b.llc_hit_read()
        b.dram_accesses = 3
        a.merge(b)
        assert a.llc_data_reads == 2
        assert a.dram_accesses == 3
