"""Ablation sweeps (tiny scale)."""

import pytest

from repro.config import scaled_config
from repro.experiments import ablations

CFG = scaled_config(1 / 1024)


class TestRRTSweeps:
    def test_capacity_sweep_runs(self):
        res = ablations.sweep_rrt_capacity("kmeans", CFG, capacities=(8, 64))
        assert set(res) == {8, 64}
        for r in res.values():
            assert r.execution.tasks_executed > 0

    def test_small_rrt_never_exceeds_capacity(self):
        res = ablations.sweep_rrt_capacity("lu", CFG, capacities=(8,))
        assert res[8].runtime.occupancy_max <= 8

    def test_latency_sweep_monotone_overall(self):
        res = ablations.sweep_rrt_latency("knn", CFG, latencies=(0, 4))
        assert res[4].makespan >= res[0].makespan


class TestClusterSweep:
    def test_geometries_run(self):
        res = ablations.sweep_cluster_size("knn", CFG, geometries=((2, 2), (4, 4)))
        assert set(res) == {(2, 2), (4, 4)}

    def test_small_clusters_more_local(self):
        """1x1 clusters replicate everywhere -> shortest read distance."""
        res = ablations.sweep_cluster_size(
            "knn", CFG, geometries=((1, 1), (4, 4))
        )
        assert (
            res[(1, 1)].machine.mean_nuca_distance
            <= res[(4, 4)].machine.mean_nuca_distance + 0.05
        )


class TestSchedulerSweep:
    def test_all_schedulers_complete(self):
        res = ablations.sweep_scheduler("kmeans", CFG)
        assert set(res) == {"ordered", "fifo", "random"}
        counts = {r.execution.tasks_executed for r in res.values()}
        assert len(counts) == 1  # same work under every scheduler


class TestPageSizeSweep:
    def test_runs_and_affects_translation(self):
        res = ablations.sweep_page_size("kmeans", CFG, page_sizes=(512, 4096))
        # Larger pages -> fewer translation walks for the same footprint.
        assert (
            res[4096].isa.translation_tlb_accesses
            < res[512].isa.translation_tlb_accesses
        )
