"""Result-set regression comparison."""

import pytest

from repro.experiments.compare import MetricDelta, compare_result_sets


def payload(makespan=1000, llc=500):
    return {
        "makespan_cycles": makespan,
        "tasks_executed": 10,
        "llc": {"accesses": llc, "hits": llc // 2},
        "l1": {"accesses": 2000},
        "noc": {"router_bytes": 9999, "mean_nuca_distance": 2.5},
        "dram": {"reads": 100, "writes": 50},
        "energy_pj": {"llc": 1e6, "noc": 5e5},
        "bypassed_accesses": 0,
    }


KEY = ("md5", "tdnuca")


class TestCompare:
    def test_identical_sets_clean(self):
        old = {KEY: payload()}
        assert compare_result_sets(old, {KEY: payload()}) == []

    def test_within_tolerance_clean(self):
        old = {KEY: payload(makespan=1000)}
        new = {KEY: payload(makespan=1010)}
        assert compare_result_sets(old, new, tolerance=0.02) == []

    def test_beyond_tolerance_reported(self):
        old = {KEY: payload(makespan=1000)}
        new = {KEY: payload(makespan=1100)}
        deltas = compare_result_sets(old, new, tolerance=0.02)
        assert len(deltas) == 1
        d = deltas[0]
        assert d.metric == "makespan_cycles"
        assert d.relative == pytest.approx(0.10)
        assert "md5/tdnuca" in str(d)

    def test_multiple_metrics(self):
        old = {KEY: payload(makespan=1000, llc=500)}
        new = {KEY: payload(makespan=2000, llc=1000)}
        metrics = {d.metric for d in compare_result_sets(old, new)}
        assert "makespan_cycles" in metrics
        assert "llc.accesses" in metrics

    def test_missing_run_flagged(self):
        old = {KEY: payload(), ("lu", "snuca"): payload()}
        new = {KEY: payload()}
        deltas = compare_result_sets(old, new)
        assert any(d.metric == "<missing>" and d.run == "lu/snuca" for d in deltas)

    def test_zero_to_nonzero(self):
        old = {KEY: {**payload(), "bypassed_accesses": 0}}
        new = {KEY: {**payload(), "bypassed_accesses": 10}}
        deltas = compare_result_sets(old, new)
        assert any(d.metric == "bypassed_accesses" for d in deltas)

    def test_missing_metric_skipped(self):
        old = {KEY: {"makespan_cycles": 100}}
        new = {KEY: {"makespan_cycles": 100}}
        assert compare_result_sets(old, new) == []

    def test_negative_tolerance(self):
        with pytest.raises(ValueError):
            compare_result_sets({}, {}, tolerance=-1)


class TestEndToEnd:
    def test_against_real_sweep(self):
        from repro.config import scaled_config
        from repro.experiments.runner import run_experiment
        from repro.experiments.serialize import (
            load_results_json,
            results_to_json,
        )

        cfg = scaled_config(1 / 2048)
        results = {("md5", "snuca"): run_experiment("md5", "snuca", cfg)}
        snapshot = load_results_json(results_to_json(results))
        assert compare_result_sets(snapshot, snapshot) == []
