"""Figure assembly from fabricated experiment results (no simulation)."""

import pytest

from repro.cache.bank import BankStats
from repro.config import scaled_config
from repro.energy.model import EnergyBreakdown
from repro.experiments import figures
from repro.experiments.runner import ExperimentResult
from repro.mem.tlb import TLBStats
from repro.noc.traffic import TrafficStats
from repro.runtime.executor import ExecutionStats
from repro.sim.machine import MachineStats
from repro.stats.counters import RNucaCensus


def fake_result(workload, policy, makespan, llc_accesses=1000, hit=0.5,
                dist=2.5, rbytes=10_000, llc_energy=100.0, noc_energy=50.0):
    llc = BankStats(hits=int(llc_accesses * hit), misses=int(llc_accesses * (1 - hit)))
    machine = MachineStats(
        policy=policy,
        llc=llc,
        l1=BankStats(),
        traffic=TrafficStats(),
        energy=EnergyBreakdown(llc=llc_energy, noc=noc_energy, dram=0, l1=0, rrt=0),
        tlb=TLBStats(),
        dram_reads=0,
        dram_writes=0,
        llc_accesses=llc_accesses,
        llc_hit_ratio=hit,
        mean_nuca_distance=dist,
        router_bytes=rbytes,
    )
    execution = ExecutionStats(makespan_cycles=makespan)
    r = ExperimentResult(workload, policy, machine, execution)
    r.rnuca_census = RNucaCensus(private=10, shared_read_only=5, shared=85)
    r.unique_blocks = 100
    r.extra = {
        "dep_category_blocks": {"not_reused": 60, "in": 20, "out": 10, "both": 6},
        "dep_blocks_total": 96,
    }
    return r


@pytest.fixture
def results():
    out = {}
    for wl in ("md5", "lu"):
        out[(wl, "snuca")] = fake_result(wl, "snuca", 1000)
        out[(wl, "rnuca")] = fake_result(wl, "rnuca", 950, dist=1.5, rbytes=9000)
        out[(wl, "tdnuca")] = fake_result(
            wl, "tdnuca", 800, llc_accesses=400, hit=0.8, dist=1.9,
            rbytes=6000, llc_energy=50.0, noc_energy=30.0,
        )
        out[(wl, "tdnuca-bypass-only")] = fake_result(wl, "tdnuca-bypass-only", 920)
        out[(wl, "tdnuca-noisa")] = fake_result(wl, "tdnuca-noisa", 1010)
    return out


class TestSpeedupFigures:
    def test_fig8(self, results):
        fig = figures.fig8_speedup(results)
        td = next(s for s in fig.series if s.label == "tdnuca")
        assert td.values["md5"] == pytest.approx(1000 / 800)
        assert td.average == pytest.approx(1.25)

    def test_fig15(self, results):
        fig = figures.fig15_bypass_only(results)
        byp = next(s for s in fig.series if s.label == "bypass_only")
        assert byp.values["lu"] == pytest.approx(1000 / 920)


class TestNormalizedFigures:
    def test_fig9(self, results):
        fig = figures.fig9_llc_accesses(results)
        td = next(s for s in fig.series if s.label == "tdnuca")
        assert td.values["md5"] == pytest.approx(0.4)

    def test_fig12(self, results):
        fig = figures.fig12_data_movement(results)
        td = next(s for s in fig.series if s.label == "tdnuca")
        assert td.values["md5"] == pytest.approx(0.6)

    def test_fig13_fig14(self, results):
        llc = figures.fig13_llc_energy(results)
        noc = figures.fig14_noc_energy(results)
        assert next(s for s in llc.series if s.label == "tdnuca").values["lu"] == pytest.approx(0.5)
        assert next(s for s in noc.series if s.label == "tdnuca").values["lu"] == pytest.approx(0.6)


class TestAbsoluteFigures:
    def test_fig10(self, results):
        fig = figures.fig10_hit_ratio(results)
        td = next(s for s in fig.series if s.label == "tdnuca")
        assert td.values["md5"] == pytest.approx(0.8)

    def test_fig11(self, results):
        fig = figures.fig11_nuca_distance(results)
        sn = next(s for s in fig.series if s.label == "snuca")
        assert sn.average == pytest.approx(2.5)

    def test_fig3(self, results):
        fig = figures.fig3_classification(results)
        byname = {s.label: s for s in fig.series}
        assert byname["rnuca_private"].values["md5"] == pytest.approx(0.10)
        assert byname["td_dep_blocks"].values["md5"] == pytest.approx(0.96)
        assert byname["td_not_reused"].values["md5"] == pytest.approx(0.60)


class TestRendering:
    def test_to_text_contains_everything(self, results):
        text = figures.fig8_speedup(results).to_text()
        assert "Fig.8" in text
        assert "md5" in text and "lu" in text
        assert "AVG" in text and "paper AVG" in text


class TestTables:
    def test_table1_rows(self):
        rows = figures.table1_rows(scaled_config(1 / 64))
        labels = [r[0] for r in rows]
        assert "cores" in labels and "RRT" in labels

    def test_table2_rows(self):
        rows = figures.table2_rows(scaled_config(1 / 1024))
        assert len(rows) == 8
        assert rows[0][0] == "Gauss"


class TestSectionVEReports:
    def test_runtime_overhead_report(self, results):
        rep = figures.runtime_overhead_report(results)
        assert rep["md5"] == pytest.approx(0.01)

    def test_empty_reports_when_missing_policies(self, results):
        partial = {k: v for k, v in results.items() if k[1] == "snuca"}
        assert figures.rrt_occupancy_report(partial) == {}
        assert figures.flush_overhead_report(partial) == {}
