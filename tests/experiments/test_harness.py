"""Crash-tolerant sweep harness: failure paths, checkpoint/resume, atomics.

The stub runners are module-level so the spawn start method can pickle
them by reference (``tests`` is a package).  Where a stub needs state that
survives the process boundary (attempt counting, "which jobs ran"), the
harness's opaque ``cfg`` argument carries a scratch-directory path and the
stubs leave marker files in it.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.harness import (
    CRASH_ENV,
    CompletedRun,
    FailedRun,
    Job,
    SweepFailure,
    SweepOutcome,
    config_fingerprint,
    load_manifest,
    retry_delay,
    run_sweep,
)
from repro.ioutils import atomic_write

SRC = str(Path(__file__).resolve().parents[2] / "src")


# --------------------------------------------------------------------------
# stub runners (must stay module-level: spawn pickles them by reference)


def ok_runner(job, cfg):
    return {"workload": job.workload, "policy": job.policy,
            "makespan_cycles": 100 + len(job.workload)}


def tracking_runner(job, cfg):
    """ok_runner that records which jobs actually executed in cfg (a dir)."""
    Path(cfg, f"ran-{job.workload}-{job.policy}").write_text("")
    return ok_runner(job, cfg)


def crash_runner(job, cfg):
    if job.workload == "boom":
        os._exit(13)
    return ok_runner(job, cfg)


def transient_runner(job, cfg):
    """Fails with OSError until two attempts have been made (cfg is a dir)."""
    marks = sorted(Path(cfg).glob(f"{job.workload}-*.attempt"))
    Path(cfg, f"{job.workload}-{len(marks)}.attempt").write_text("")
    if len(marks) < 2:
        raise OSError("flaky I/O")
    return ok_runner(job, cfg)


def permanent_runner(job, cfg):
    raise ValueError("deterministic config error")


def hang_runner(job, cfg):
    if job.workload == "hang":
        time.sleep(120)
    return ok_runner(job, cfg)


# --------------------------------------------------------------------------


class TestInline:
    def test_all_ok(self):
        outcome = run_sweep([Job("a", "p"), Job("b", "p")], runner=ok_runner)
        assert outcome.ok == 2 and outcome.failed == 0
        assert outcome.results()[("a", "p")]["makespan_cycles"] == 101
        assert all(r.attempts == 1 for r in outcome.completed)

    def test_transient_failure_retried(self, tmp_path):
        outcome = run_sweep(
            [Job("flaky", "p")], str(tmp_path),
            runner=transient_runner, retries=2, backoff=0,
        )
        assert outcome.ok == 1 and outcome.failed == 0
        assert outcome.completed[0].attempts == 3
        assert outcome.retried == 1
        assert len(list(tmp_path.glob("flaky-*.attempt"))) == 3

    def test_transient_failure_exhausts_retries(self, tmp_path):
        outcome = run_sweep(
            [Job("flaky", "p")], str(tmp_path),
            runner=transient_runner, retries=1, backoff=0,
        )
        assert outcome.failed == 1
        rec = outcome.failures[0]
        assert rec.error == "OSError" and rec.attempts == 2
        assert not rec.timed_out and "flaky I/O" in rec.message

    def test_permanent_failure_not_retried(self):
        outcome = run_sweep(
            [Job("bad", "p")], runner=permanent_runner, retries=3, backoff=0
        )
        assert outcome.failed == 1
        rec = outcome.failures[0]
        assert rec.error == "ValueError" and rec.attempts == 1
        assert "traceback" in rec.to_dict()["traceback"].lower()

    def test_validation(self):
        with pytest.raises(ValueError):
            run_sweep([Job("a", "p"), Job("a", "p")], runner=ok_runner)
        with pytest.raises(ValueError):
            run_sweep([Job("a", "p")], runner=ok_runner, workers=0)
        with pytest.raises(ValueError):
            run_sweep([Job("a", "p")], runner=ok_runner, retries=-1)
        with pytest.raises(ValueError):
            run_sweep(
                [Job("a", "p")], runner=ok_runner, timeout=5, isolated=False
            )
        with pytest.raises(ValueError):
            run_sweep([Job("a", "p")], runner=ok_runner, resume=True)


class TestIsolated:
    def test_worker_crash_degrades_gracefully(self):
        jobs = [Job("a", "p"), Job("boom", "p"), Job("c", "p")]
        outcome = run_sweep(
            jobs, runner=crash_runner, workers=2, retries=1, backoff=0
        )
        assert outcome.ok == 2
        assert outcome.failed == 1
        rec = outcome.failures[0]
        assert rec.workload == "boom"
        assert rec.error == "WorkerCrash"
        assert rec.attempts == 2  # first try + one retry, both crash
        assert "13" in rec.message

    def test_timeout_kills_and_records(self):
        jobs = [Job("hang", "p"), Job("ok", "p")]
        t0 = time.monotonic()
        outcome = run_sweep(
            jobs, runner=hang_runner, workers=2, timeout=3.0, retries=0
        )
        assert time.monotonic() - t0 < 60  # nowhere near the 120s sleep
        assert outcome.ok == 1 and outcome.failed == 1
        rec = outcome.failures[0]
        assert rec.workload == "hang" and rec.timed_out
        assert rec.error == "Timeout"
        assert outcome.timed_out == 1

    def test_permanent_error_reported_across_process(self):
        outcome = run_sweep(
            [Job("bad", "p")], runner=permanent_runner,
            workers=2, retries=3, backoff=0,
        )
        assert outcome.failed == 1
        rec = outcome.failures[0]
        assert rec.error == "ValueError" and rec.attempts == 1
        assert "deterministic config error" in rec.message
        assert "permanent_runner" in rec.traceback

    def test_crash_env_hook(self, monkeypatch):
        monkeypatch.setenv(CRASH_ENV, "a/p")
        outcome = run_sweep(
            [Job("a", "p"), Job("b", "p")], runner=ok_runner,
            workers=2, retries=0,
        )
        assert outcome.failed == 1
        assert outcome.failures[0].workload == "a"
        assert outcome.failures[0].error == "WorkerCrash"


class TestCheckpointResume:
    def test_shards_and_manifest_written(self, tmp_path):
        rd = tmp_path / "run"
        outcome = run_sweep(
            [Job("a", "p"), Job("boom", "p")], run_dir=rd,
            runner=crash_runner, workers=2, retries=0,
            request={"scale": 64},
        )
        assert outcome.ok == 1 and outcome.failed == 1
        ok_shard = json.loads((rd / "shards" / "a__p__s0.json").read_text())
        assert ok_shard["status"] == "ok"
        assert ok_shard["result"]["makespan_cycles"] == 101
        bad_shard = json.loads((rd / "shards" / "boom__p__s0.json").read_text())
        assert bad_shard["status"] == "failed"
        assert bad_shard["failure"]["error"] == "WorkerCrash"
        manifest = load_manifest(rd)
        assert manifest["request"] == {"scale": 64}
        assert manifest["status"]["boom/p"]["status"] == "failed"
        assert manifest["failures"][0]["workload"] == "boom"

    def test_resume_runs_only_unfinished_jobs(self, tmp_path):
        rd = tmp_path / "run"
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        jobs = [Job("a", "p"), Job("boom", "p"), Job("c", "p")]
        first = run_sweep(
            jobs, str(scratch), run_dir=rd,
            runner=crash_runner, workers=2, retries=0,
        )
        assert first.failed == 1
        # resume with a runner that succeeds and records what it ran
        second = run_sweep(
            jobs, str(scratch), run_dir=rd, resume=True,
            runner=tracking_runner, workers=2, retries=0,
        )
        assert second.ok == 3 and second.failed == 0
        assert second.from_checkpoint == 2
        ran = sorted(p.name for p in scratch.glob("ran-*"))
        assert ran == ["ran-boom-p"]  # only the crashed job re-ran
        merged = second.result_dicts()
        assert set(merged) == {("a", "p"), ("boom", "p"), ("c", "p")}

    def test_resume_rejects_different_config(self, tmp_path):
        rd = tmp_path / "run"
        run_sweep([Job("a", "p")], "cfg-one", run_dir=rd, runner=ok_runner)
        with pytest.raises(ValueError, match="different configuration"):
            run_sweep(
                [Job("a", "p")], "cfg-two", run_dir=rd, resume=True,
                runner=ok_runner,
            )

    def test_resume_requires_manifest(self, tmp_path):
        with pytest.raises(ValueError, match="not a sweep run directory"):
            run_sweep(
                [Job("a", "p")], run_dir=tmp_path / "empty", resume=True,
                runner=ok_runner,
            )

    def test_corrupt_shard_is_rerun(self, tmp_path):
        rd = tmp_path / "run"
        run_sweep([Job("a", "p")], run_dir=rd, runner=ok_runner)
        (rd / "shards" / "a__p__s0.json").write_text('{"status": "ok", "tru')
        outcome = run_sweep(
            [Job("a", "p")], run_dir=rd, resume=True, runner=ok_runner
        )
        assert outcome.ok == 1 and outcome.from_checkpoint == 0


class TestOutcomeAndRecords:
    def test_failed_run_roundtrip(self):
        rec = FailedRun("a", "p", 0, "Timeout", "deadline", "", 2, 1.5, True)
        assert FailedRun.from_dict(rec.to_dict()) == rec

    def test_duplicate_pair_rejected_in_merge(self):
        outcome = SweepOutcome(
            completed=[
                CompletedRun("a", "p", 0, 1, 0.1, {"x": 1}),
                CompletedRun("a", "p", 1, 1, 0.1, {"x": 2}),
            ]
        )
        with pytest.raises(ValueError, match="duplicate run"):
            outcome.result_dicts()

    def test_sweep_failure_message(self):
        failures = [
            FailedRun(f"w{i}", "p", 0, "OSError", "m", "", 1, 0.1)
            for i in range(7)
        ]
        exc = SweepFailure(failures)
        assert "7 sweep job(s) failed" in str(exc)
        assert "and 2 more" in str(exc)

    def test_config_fingerprint_stability(self):
        from repro.config import scaled_config

        a, b = scaled_config(1 / 64), scaled_config(1 / 64)
        assert config_fingerprint(a) == config_fingerprint(b)
        assert config_fingerprint(a) != config_fingerprint(scaled_config(1 / 128))


class TestRetryDelay:
    def test_exponential_without_rng(self):
        assert retry_delay(1, 0.25) == 0.25
        assert retry_delay(2, 0.25) == 0.5
        assert retry_delay(3, 0.25) == 1.0

    def test_capped(self):
        assert retry_delay(50, 0.25) == 30.0
        assert retry_delay(50, 0.25, cap=2.0) == 2.0

    def test_jitter_stays_within_half_to_full(self):
        import random

        rng = random.Random(7)
        for attempt in range(1, 8):
            base = retry_delay(attempt, 0.25)
            for _ in range(20):
                d = retry_delay(attempt, 0.25, rng=rng)
                assert 0.5 * base <= d <= base

    def test_zero_backoff_means_no_delay(self):
        import random

        assert retry_delay(3, 0.0) == 0.0
        assert retry_delay(3, 0.0, rng=random.Random(0)) == 0.0


class TestAtomicWrite:
    def test_writes_complete_file(self, tmp_path):
        target = tmp_path / "out.json"
        with atomic_write(target) as fh:
            fh.write('{"ok": true}')
        assert json.loads(target.read_text()) == {"ok": True}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_error_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text('{"old": 1}')
        with pytest.raises(RuntimeError):
            with atomic_write(target) as fh:
                fh.write('{"new": ')
                raise RuntimeError("interrupted")
        assert json.loads(target.read_text()) == {"old": 1}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_rejects_read_modes(self, tmp_path):
        for mode in ("r", "a", "w+"):
            with pytest.raises(ValueError):
                with atomic_write(tmp_path / "x", mode=mode):
                    pass

    def test_kill9_mid_write_never_truncates(self, tmp_path):
        """SIGKILL between write() and replace() must leave the previous
        complete content in place (acceptance criterion)."""
        target = tmp_path / "out.json"
        target.write_text('{"old": true}')
        code = (
            "import os, sys; sys.path.insert(0, sys.argv[2])\n"
            "from repro.ioutils import atomic_write\n"
            "ctx = atomic_write(sys.argv[1])\n"
            "fh = ctx.__enter__()\n"
            "fh.write('{\"new\": '); fh.flush()\n"
            "os.kill(os.getpid(), 9)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code, str(target), SRC],
            capture_output=True,
        )
        assert proc.returncode == -9
        assert json.loads(target.read_text()) == {"old": True}
        # a leftover *.tmp staging file is acceptable; a truncated target is not
        for leftover in tmp_path.iterdir():
            if leftover != target:
                assert leftover.name.endswith(".tmp")


class TestRunSuiteDelegation:
    def test_failure_raises_sweep_failure(self, monkeypatch):
        from repro.experiments.runner import run_suite

        def explode(workload, policy, cfg=None, **kw):
            raise RuntimeError("sim blew up")

        monkeypatch.setattr(
            "repro.experiments.harness._default_runner",
            lambda job, cfg: explode(job.workload, job.policy, cfg),
        )
        with pytest.raises(SweepFailure) as info:
            run_suite(["md5"], ["snuca"])
        assert info.value.failures[0].error == "RuntimeError"

    def test_real_suite_through_harness(self):
        from repro.config import scaled_config
        from repro.experiments.runner import run_suite

        res = run_suite(["md5"], ["snuca"], scaled_config(1 / 2048))
        assert res[("md5", "snuca")].makespan > 0
