"""Harness graceful preemption: signals, snapshots, resume, no orphans.

Real-simulation tests run the golden-scale (1/1024) machine so preempted
snapshots exercise every stateful subsystem; stub-runner tests cover the
orchestration edges (quarantine, schema compatibility, signal hygiene)
without simulation cost.
"""

from __future__ import annotations

import json
import multiprocessing
import signal
import threading
import time
from pathlib import Path

import pytest

from repro.config import scaled_config
from repro.experiments.harness import (
    SLOW_ENV,
    SNAPSHOT_DIR,
    Job,
    load_manifest,
    run_sweep,
)
from repro.experiments.serialize import SCHEMA_VERSION

SCALE = 1.0 / 1024.0
JOBS = [Job("kmeans", "tdnuca"), Job("kmeans", "snuca")]


def _cfg():
    return scaled_config(SCALE)


def _reference_results():
    outcome = run_sweep(JOBS, _cfg())
    assert outcome.ok == len(JOBS) and not outcome.failures
    return {
        (r.workload, r.policy): r.result_dict() for r in outcome.completed
    }


def _strip_resume_marker(d):
    return {k: v for k, v in d.items() if k != "resumed_from_task"}


class TestPreemptResume:
    def test_inline_preempt_then_resume_byte_identical(self, tmp_path):
        reference = _reference_results()
        run_dir = tmp_path / "run"

        first = run_sweep(
            JOBS, _cfg(), run_dir=run_dir, preempt_after_tasks=5
        )
        assert first.ok == 0 and not first.failures
        assert [
            (p.workload, p.policy, p.tasks_done) for p in first.preempted
        ] == [("kmeans", "snuca", 5), ("kmeans", "tdnuca", 5)]
        for p in first.preempted:
            assert Path(p.snapshot).exists()
        manifest = load_manifest(run_dir)
        assert manifest["sweep_status"] == "complete"
        assert all(
            rec["status"] == "preempted" for rec in manifest["status"].values()
        )

        events = []
        second = run_sweep(
            JOBS, _cfg(), run_dir=run_dir, resume=True,
            on_event=lambda kind, job, detail: events.append(kind),
        )
        assert events.count("resumed") == len(JOBS)
        assert second.ok == len(JOBS) and not second.failures
        assert not second.preempted and not second.interrupted
        for run in second.completed:
            d = run.result_dict()
            assert d["resumed_from_task"] == 5
            assert _strip_resume_marker(d) == reference[
                (run.workload, run.policy)
            ]
        assert load_manifest(run_dir)["sweep_status"] == "complete"

    def test_isolated_preempt_then_resume_byte_identical(self, tmp_path):
        reference = _reference_results()
        run_dir = tmp_path / "run"

        first = run_sweep(
            JOBS, _cfg(), run_dir=run_dir, workers=2,
            preempt_after_tasks=5,
        )
        assert len(first.preempted) == len(JOBS) and not first.failures
        assert multiprocessing.active_children() == []

        second = run_sweep(
            JOBS, _cfg(), run_dir=run_dir, resume=True, workers=2
        )
        assert second.ok == len(JOBS) and not second.failures
        for run in second.completed:
            assert _strip_resume_marker(run.result_dict()) == reference[
                (run.workload, run.policy)
            ]

    def test_periodic_checkpoint_does_not_disturb_results(self, tmp_path):
        reference = _reference_results()
        outcome = run_sweep(
            JOBS, _cfg(), run_dir=tmp_path / "run", checkpoint_every=3
        )
        assert outcome.ok == len(JOBS) and not outcome.preempted
        snaps = list((tmp_path / "run" / SNAPSHOT_DIR).glob("*.snap"))
        assert len(snaps) == len(JOBS)
        for run in outcome.completed:
            assert run.result_dict() == reference[(run.workload, run.policy)]


class TestSignalHygiene:
    def test_sigterm_drains_workers_and_leaves_no_orphans(
        self, tmp_path, monkeypatch
    ):
        """SIGTERM mid-sweep: every worker is joined (no orphan children),
        the outcome reports interrupted, and a later resume completes all
        jobs correctly."""
        monkeypatch.setenv(SLOW_ENV, "8")  # hold workers mid-flight
        run_dir = tmp_path / "run"
        timer = threading.Timer(
            3.0, lambda: signal.raise_signal(signal.SIGTERM)
        )
        timer.start()
        t0 = time.monotonic()
        try:
            outcome = run_sweep(
                JOBS, _cfg(), run_dir=run_dir, workers=2, retries=0,
            )
        finally:
            timer.cancel()
        assert outcome.interrupted
        assert outcome.ok == 0 and not outcome.failures
        assert multiprocessing.active_children() == []
        # The stop is graceful but prompt: well under the workers' sleep
        # plus simulation time, thanks to checkpoint-at-next-boundary.
        assert time.monotonic() - t0 < 60
        assert load_manifest(run_dir)["sweep_status"] == "interrupted"

        monkeypatch.delenv(SLOW_ENV)
        resumed = run_sweep(
            JOBS, _cfg(), run_dir=run_dir, resume=True, workers=2
        )
        assert resumed.ok == len(JOBS) and not resumed.failures
        assert multiprocessing.active_children() == []

    def test_sweep_deadline_preempts_inline_jobs(self, tmp_path):
        run_dir = tmp_path / "run"
        outcome = run_sweep(
            JOBS, _cfg(), run_dir=run_dir, deadline=0.001,
        )
        assert outcome.interrupted
        assert outcome.ok == 0 and not outcome.failures
        # The first job checkpoints at its first task boundary; the rest
        # never start.
        assert len(outcome.preempted) >= 1
        resumed = run_sweep(JOBS, _cfg(), run_dir=run_dir, resume=True)
        assert resumed.ok == len(JOBS) and not resumed.failures


class TestQuarantine:
    def test_corrupt_snapshot_falls_back_to_fresh_run(self, tmp_path):
        reference = _reference_results()
        run_dir = tmp_path / "run"
        first = run_sweep(
            JOBS, _cfg(), run_dir=run_dir, preempt_after_tasks=5
        )
        assert len(first.preempted) == len(JOBS)

        victim = Path(first.preempted[0].snapshot)
        raw = bytearray(victim.read_bytes())
        raw[-1] ^= 0x01  # bit rot in the payload
        victim.write_bytes(bytes(raw))

        with pytest.warns(UserWarning, match="corrupt snapshot"):
            second = run_sweep(
                JOBS, _cfg(), run_dir=run_dir, resume=True
            )
        assert second.ok == len(JOBS) and not second.failures
        assert victim.with_name(victim.name + ".corrupt").exists()
        by_key = {(r.workload, r.policy): r.result_dict()
                  for r in second.completed}
        bad = first.preempted[0]
        # The quarantined job reran from scratch (no resume marker) but
        # still converged on the reference statistics.
        assert "resumed_from_task" not in by_key[(bad.workload, bad.policy)]
        for key, d in by_key.items():
            assert _strip_resume_marker(d) == reference[key]


class TestSchemaCompat:
    def test_schema_v3_ok_shard_still_loads(self, tmp_path):
        """Archives written before the preemption feature (schema 3)
        resume cleanly under schema 4."""
        run_dir = tmp_path / "run"
        first = run_sweep(JOBS, _cfg(), run_dir=run_dir)
        assert first.ok == len(JOBS)

        # Age the whole run directory back to schema 3.
        manifest_path = run_dir / "manifest.json"
        doc = json.loads(manifest_path.read_text())
        assert doc["schema_version"] == SCHEMA_VERSION == 4
        doc["schema_version"] = 3
        manifest_path.write_text(json.dumps(doc))
        for shard in (run_dir / "shards").glob("*.json"):
            rec = json.loads(shard.read_text())
            rec["schema_version"] = 3
            rec["result"].pop("resumed_from_task", None)
            shard.write_text(json.dumps(rec))

        ran = []
        second = run_sweep(
            JOBS, _cfg(), run_dir=run_dir, resume=True,
            on_event=lambda kind, job, detail: ran.append((kind, job.label)),
        )
        assert second.ok == len(JOBS)
        assert second.from_checkpoint == len(JOBS)  # nothing re-ran
        assert all(kind == "skipped" for kind, _ in ran)
