"""Consistency of the digitized paper reference data."""

import pytest

from repro.experiments import paper
from repro.workloads.registry import workload_names


class TestCoverage:
    def test_bench_list_matches_registry(self):
        assert paper.BENCHES == workload_names()

    def test_fig8_covers_all_benches(self):
        assert set(paper.FIG8_TDNUCA) == set(paper.BENCHES)
        assert set(paper.FIG8_RNUCA) == set(paper.BENCHES)

    def test_fig3_partitions_benches(self):
        """High/low NotReused groups + Gauss partition the suite."""
        grouped = (
            set(paper.FIG3_HIGH_NOT_REUSED)
            | set(paper.FIG3_LOW_NOT_REUSED)
            | {"gauss"}
        )
        assert grouped == set(paper.BENCHES)

    def test_fig15_partitions_benches(self):
        grouped = (
            set(paper.FIG15_NO_BENEFIT)
            | set(paper.FIG15_MATCHES_FULL)
            | set(paper.FIG15_INTERMEDIATE)
        )
        assert grouped == set(paper.BENCHES)


class TestInternalConsistency:
    def test_fig8_average_consistent_with_bars(self):
        vals = [v for v in paper.FIG8_TDNUCA.values() if v is not None]
        assert sum(vals) / len(vals) == pytest.approx(paper.FIG8_TDNUCA_AVG, abs=0.02)

    def test_td_beats_r_in_paper(self):
        assert paper.FIG8_TDNUCA_AVG > paper.FIG8_RNUCA_AVG
        assert paper.FIG9_TDNUCA_AVG < paper.FIG9_RNUCA_AVG
        assert paper.FIG12_TDNUCA_AVG < paper.FIG12_RNUCA_AVG
        assert paper.FIG14_TDNUCA_AVG < paper.FIG14_RNUCA_AVG

    def test_distance_ordering(self):
        assert (
            paper.FIG11_AVG["rnuca"]
            < paper.FIG11_AVG["tdnuca"]
            < paper.FIG11_AVG["snuca"]
        )

    def test_rrt_latency_overheads_monotone(self):
        vals = [paper.SECVE_RRT_LATENCY_OVERHEADS[c] for c in range(5)]
        assert vals == sorted(vals)

    def test_bypass_only_below_full(self):
        assert paper.FIG15_BYPASS_ONLY_AVG < paper.FIG8_TDNUCA_AVG

    def test_occupancy_bounds(self):
        assert paper.SECVE_RRT_MEAN_OCCUPANCY < paper.SECVE_RRT_MAX_OCCUPANCY <= 64
