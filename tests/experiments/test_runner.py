"""Experiment runner: end-to-end (workload x policy) runs at tiny scale."""

import pytest

from repro.config import scaled_config
from repro.experiments.runner import default_config, run_experiment, run_suite

# Small but non-degenerate scale; module-scoped cache keeps this affordable.
CFG = scaled_config(1 / 1024)


@pytest.fixture(scope="module")
def md5_results():
    return {
        pol: run_experiment("md5", pol, CFG)
        for pol in ("snuca", "rnuca", "tdnuca", "tdnuca-bypass-only", "tdnuca-noisa")
    }


class TestRunExperiment:
    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            run_experiment("md5", "hnuca", CFG)

    def test_result_fields(self, md5_results):
        r = md5_results["snuca"]
        assert r.workload == "md5"
        assert r.policy == "snuca"
        assert r.makespan > 0
        assert r.execution.tasks_executed == 128
        assert r.rnuca_census is not None
        assert r.unique_blocks > 0

    def test_snuca_has_no_tdnuca_stats(self, md5_results):
        r = md5_results["snuca"]
        assert r.runtime is None
        assert r.isa is None

    def test_tdnuca_collects_runtime_stats(self, md5_results):
        r = md5_results["tdnuca"]
        assert r.runtime is not None
        assert r.runtime.decisions > 0
        assert r.isa.registers_executed > 0
        assert "dep_category_blocks" in r.extra

    def test_md5_everything_bypassed(self, md5_results):
        r = md5_results["tdnuca"]
        cats = r.extra["dep_category_blocks"]
        total = r.extra["dep_blocks_total"]
        assert cats["not_reused"] / total > 0.95

    def test_md5_tdnuca_cuts_llc_accesses(self, md5_results):
        # At 1/1024 scale the untracked scratch traffic floor is a large
        # fraction of accesses, so the cut is milder than the paper's 0.14x.
        s = md5_results["snuca"].machine.llc_accesses
        t = md5_results["tdnuca"].machine.llc_accesses
        assert t < 0.6 * s

    def test_md5_tdnuca_not_slower(self, md5_results):
        assert md5_results["tdnuca"].makespan <= md5_results["snuca"].makespan * 1.02

    def test_bypass_only_matches_full_on_md5(self, md5_results):
        """Paper Fig. 15: pure-streaming benchmarks gain nothing from the
        placement/replication rules."""
        full = md5_results["tdnuca"].makespan
        byp = md5_results["tdnuca-bypass-only"].makespan
        assert abs(full - byp) / full < 0.05

    def test_noisa_close_to_snuca(self, md5_results):
        """Section V-E: extensions-on/ISA-off behaves like S-NUCA."""
        s = md5_results["snuca"]
        n = md5_results["tdnuca-noisa"]
        assert n.machine.llc_accesses == pytest.approx(s.machine.llc_accesses, rel=0.01)
        assert abs(n.makespan - s.makespan) / s.makespan < 0.05

    def test_rnuca_plausible(self, md5_results):
        r = md5_results["rnuca"]
        assert r.machine.mean_nuca_distance < md5_results["snuca"].machine.mean_nuca_distance


class TestRunSuite:
    def test_suite_keys(self):
        res = run_suite(["knn"], ["snuca", "tdnuca"], CFG)
        assert set(res) == {("knn", "snuca"), ("knn", "tdnuca")}

    def test_default_config_scale(self):
        cfg = default_config()
        assert cfg.capacity_scale == pytest.approx(1 / 64)


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run_experiment("kmeans", "tdnuca", CFG, seed=5)
        b = run_experiment("kmeans", "tdnuca", CFG, seed=5)
        assert a.makespan == b.makespan
        assert a.machine.llc_accesses == b.machine.llc_accesses
        assert a.machine.router_bytes == b.machine.router_bytes


class TestRRTLatencySweep:
    def test_latency_increases_makespan(self):
        fast = run_experiment("knn", "tdnuca", CFG, rrt_lookup_cycles=0)
        slow = run_experiment("knn", "tdnuca", CFG, rrt_lookup_cycles=4)
        assert slow.makespan > fast.makespan
