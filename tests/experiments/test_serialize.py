"""Result/figure serialization."""

import json

import pytest

from repro.config import scaled_config
from repro.experiments import figures
from repro.experiments.runner import run_experiment
from repro.experiments.serialize import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    SchemaVersionError,
    figure_to_dict,
    figure_to_markdown,
    load_results_json,
    load_sweep,
    result_to_dict,
    results_to_json,
    sweep_to_json,
)

CFG = scaled_config(1 / 1024)


@pytest.fixture(scope="module")
def results():
    return {
        ("md5", pol): run_experiment("md5", pol, CFG)
        for pol in ("snuca", "rnuca", "tdnuca")
    }


class TestResultDict:
    def test_core_fields(self, results):
        d = result_to_dict(results[("md5", "tdnuca")])
        assert d["workload"] == "md5"
        assert d["policy"] == "tdnuca"
        assert d["makespan_cycles"] > 0
        assert d["llc"]["hits"] + d["llc"]["misses"] == d["llc"]["accesses"]
        assert "tdnuca_runtime" in d
        assert "isa" in d
        assert "dep_category_blocks" in d

    def test_snuca_omits_tdnuca_sections(self, results):
        d = result_to_dict(results[("md5", "snuca")])
        assert "tdnuca_runtime" not in d
        assert "isa" not in d
        assert "block_census" in d

    def test_json_safe(self, results):
        for r in results.values():
            json.dumps(result_to_dict(r))


class TestSuiteJson:
    def test_roundtrip(self, results):
        text = results_to_json(results)
        loaded = load_results_json(text)
        assert set(loaded) == set(results)
        assert (
            loaded[("md5", "tdnuca")]["makespan_cycles"]
            == results[("md5", "tdnuca")].makespan
        )

    def test_envelope_is_versioned(self, results):
        doc = json.loads(results_to_json(results))
        assert doc["schema_version"] == SCHEMA_VERSION
        assert set(doc) == {"schema_version", "runs", "failures", "sweep"}

    def test_sweep_document_carries_failures_and_meta(self, results):
        failure = {"workload": "lu", "policy": "tdnuca", "error": "Timeout"}
        text = sweep_to_json(
            {k: result_to_dict(v) for k, v in results.items()},
            [failure],
            {"seed": 3, "wall_time_s": 1.5},
        )
        doc = load_sweep(text)
        assert doc.failures == [failure]
        assert doc.meta["seed"] == 3
        assert set(doc.runs) == set(results)

    def test_malformed_key(self):
        with pytest.raises(ValueError):
            load_results_json(
                '{"schema_version": 2, "runs": {"nokey": {}}}'
            )

    def test_unversioned_input_rejected(self):
        with pytest.raises(ValueError, match="unversioned"):
            load_results_json('{"md5/snuca": {"makespan_cycles": 1}}')

    def test_wrong_version_rejected(self):
        with pytest.raises(SchemaVersionError) as info:
            load_results_json('{"schema_version": 99, "runs": {}}')
        assert info.value.found == 99
        assert info.value.expected == SCHEMA_VERSION

    def test_corrupt_input_rejected(self):
        with pytest.raises(ValueError, match="corrupt"):
            load_results_json('{"schema_version": 2, "ru')
        with pytest.raises(ValueError, match="corrupt"):
            load_results_json('[1, 2, 3]')
        with pytest.raises(ValueError, match="corrupt"):
            load_results_json('{"schema_version": 2}')
        with pytest.raises(ValueError, match="corrupt"):
            load_results_json(
                '{"schema_version": 2, "runs": {"md5/snuca": 5}}'
            )


class TestErrorsNameTheFile:
    """``load_sweep(path=...)`` must put the offending file in every
    failure message, so a broken archive in a 30-file run directory is
    identifiable from the error alone."""

    def test_schema_error_carries_path_and_versions(self):
        with pytest.raises(SchemaVersionError) as info:
            load_sweep(
                '{"schema_version": 99, "runs": {}}',
                path="results/batch-07.json",
            )
        assert info.value.found == 99
        assert info.value.path == "results/batch-07.json"
        msg = str(info.value)
        assert "results/batch-07.json" in msg
        assert "99" in msg
        assert str(SCHEMA_VERSION) in msg

    @pytest.mark.parametrize("text, needle", [
        ('{"schema_ver', "corrupt sweep JSON"),
        ("[1, 2]", "corrupt sweep JSON"),
        ('{"runs": {}}', "unversioned"),
        ('{"schema_version": 4}', "missing 'runs'"),
        ('{"schema_version": 4, "runs": {"nokey": {}}}', "malformed"),
        ('{"schema_version": 4, "runs": {"a/b": 5}}', "not an object"),
        ('{"schema_version": 4, "runs": {}, "failures": 3}', "failures"),
        ('{"schema_version": 4, "runs": {}, "sweep": 3}', "sweep"),
    ])
    def test_every_value_error_is_prefixed_with_the_path(self, text, needle):
        with pytest.raises(ValueError, match=needle) as info:
            load_sweep(text, path="broken.json")
        assert str(info.value).startswith("broken.json: ")

    def test_without_path_messages_stay_clean(self):
        with pytest.raises(ValueError) as info:
            load_sweep("[1, 2]")
        assert "None" not in str(info.value)


class TestSchemaVersions:
    """Schema 3 added optional trace/timeline sections; 4 adds the
    optional ``resumed_from_task`` preemption marker; 2 and 3 stay
    readable."""

    def test_version_4_is_current_and_2_3_supported(self):
        assert SCHEMA_VERSION == 4
        assert SUPPORTED_SCHEMA_VERSIONS == (2, 3, 4)

    @pytest.mark.parametrize("old_version", [2, 3])
    def test_older_document_still_loads(self, results, old_version):
        # An older archive is a v4 archive without the optional sections.
        doc = json.loads(results_to_json(results))
        doc["schema_version"] = old_version
        loaded = load_sweep(json.dumps(doc))
        assert set(loaded.runs) == set(results)

    def test_v4_resume_marker_round_trips(self, results):
        d = result_to_dict(results[("md5", "tdnuca")])
        d["resumed_from_task"] = 7
        text = sweep_to_json({("md5", "tdnuca"): d}, [], {"seed": 0})
        loaded = load_sweep(text)
        assert loaded.runs[("md5", "tdnuca")]["resumed_from_task"] == 7

    def test_v3_trace_sections_round_trip(self, results):
        from repro.api import Session
        from repro.config import scaled_config

        r = Session(scaled_config(1 / 1024)).run("md5", "tdnuca", trace=True)
        d = r.to_dict()
        assert d["trace"]["events_recorded"] > 0
        assert d["trace"]["by_kind"]["task_start"] > 0
        assert d["timeline"]["samples"]
        text = sweep_to_json({("md5", "tdnuca"): d}, [], {"seed": 0})
        loaded = load_sweep(text)
        run = loaded.runs[("md5", "tdnuca")]
        assert run["trace"] == d["trace"]
        assert run["timeline"]["sample_every"] == d["timeline"]["sample_every"]

    def test_untraced_runs_omit_the_optional_sections(self, results):
        d = result_to_dict(results[("md5", "snuca")])
        assert "trace" not in d and "timeline" not in d


class TestFigureSerialization:
    def test_figure_dict(self, results):
        fig = figures.fig8_speedup(results)
        d = figure_to_dict(fig)
        assert d["id"] == "Fig.8"
        assert "tdnuca" in d["series"]
        assert d["series"]["tdnuca"]["values"]["md5"] > 0

    def test_markdown_table(self, results):
        md = figure_to_markdown(figures.fig8_speedup(results))
        lines = md.splitlines()
        assert lines[0].startswith("**Fig.8")
        assert any(line.startswith("| md5 |") for line in lines)
        assert any("**AVG**" in line for line in lines)
        assert any("paper AVG" in line for line in lines)
