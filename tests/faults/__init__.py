"""Tests for the hardware fault injection subsystem."""
