"""Fault injection behaviour: bank deaths, link deaths, DRAM transients.

Unit-level: each component degrades correctly in isolation.  End-to-end
coverage (whole workloads under faults) lives in
``tests/test_failure_injection.py``.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.config import scaled_config
from repro.faults.injector import FaultInjector
from repro.faults.schedule import parse_fault_spec
from repro.noc.routing import fault_route, xy_route
from repro.noc.topology import Mesh
from repro.sim.machine import build_machine
from tests.conftest import tiny_config

CFG = tiny_config()


def _machine(policy="snuca", **overrides):
    cfg = replace(CFG, **overrides) if overrides else CFG
    return build_machine(cfg, policy)


def _run(machine, core, blocks, writes=None):
    pblocks = np.asarray(blocks, dtype=np.int64)
    if writes is None:
        w = np.zeros(len(blocks), dtype=bool)
    else:
        w = np.asarray(writes, dtype=bool)
    return machine._run_blocks(core, pblocks, w)


class TestBankDeath:
    def test_dead_bank_is_emptied_and_never_accessed(self):
        m = _machine()
        _run(m, 0, list(range(256)), [True] * 256)
        report = m.fail_bank(5)
        assert m.llc.banks[5].occupancy == 0
        assert report["blocks_lost"] > 0
        # Traffic now remaps: the dead bank's stats must not grow.
        before = m.llc.banks[5].stats.accesses
        _run(m, 1, list(range(256)))
        assert m.llc.banks[5].stats.accesses == before
        assert m.policy.stats.dead_bank_redirects > 0
        assert m.check_invariants() == []

    def test_redirect_is_deterministic_and_spread(self):
        m = _machine()
        m.fail_bank(5)
        targets = {m.policy.bank_for(0, b, False) for b in range(5, 4096, 16)}
        assert 5 not in targets
        assert len(targets) > 1  # spread over survivors, not one hot bank
        again = {m.policy.bank_for(0, b, False) for b in range(5, 4096, 16)}
        assert targets == again

    def test_orphaned_l1_copies_are_dropped(self):
        m = _machine()
        # Touch blocks homed on bank 3 so L1 and LLC both hold them.
        blocks = [3 + 16 * i for i in range(8)]
        _run(m, 0, blocks)
        assert all(m.l1s[0].contains(b) for b in blocks)
        report = m.fail_bank(3)
        assert report["l1_copies_dropped"] > 0
        assert m.check_invariants() == []

    def test_double_kill_rejected(self):
        m = _machine()
        m.fail_bank(2)
        with pytest.raises(ValueError):
            m.fail_bank(2)

    def test_cannot_kill_last_bank(self):
        m = _machine()
        for bank in range(15):
            m.fail_bank(bank)
        with pytest.raises(ValueError):
            m.fail_bank(15)
        # The lone survivor takes everything and the machine still runs.
        _run(m, 0, list(range(64)), [True] * 64)
        assert m.llc.banks[15].stats.accesses > 0
        assert m.check_invariants() == []

    def test_dnuca_location_table_purged(self):
        m = _machine("dnuca")
        _run(m, 0, list(range(128)))
        m.fail_bank(7)
        assert 7 not in m.policy._location.values()
        _run(m, 0, list(range(128)))  # re-access: migrations must avoid 7
        assert m.llc.banks[7].occupancy == 0
        assert m.check_invariants() == []

    def test_tdnuca_rrt_entries_dropped(self):
        m = _machine("tdnuca")
        m.rrts[0].register(0x1000, 0x2000, 1 << 9)
        m.rrts[1].register(0x1000, 0x2000, (1 << 9) | (1 << 10))
        m.rrts[2].register(0x5000, 0x6000, 1 << 11)
        report = m.fail_bank(9)
        assert report["rrt_entries_dropped"] == 2
        assert m.rrts[0].lookup(0x1000) is None
        assert m.rrts[2].lookup(0x5000) == 1 << 11


class TestLinkDeath:
    def test_distances_increase_and_inflation_reported(self):
        mesh = Mesh(4, 4, 2, 2)
        base = mesh.distance.copy()
        mesh.fail_link(0, 1)
        assert mesh.distance[0, 1] > base[0, 1]
        assert (mesh.distance >= base).all()
        assert mesh.mean_hop_inflation() > 0.0
        assert mesh.manhattan[0, 1] == 1  # baseline preserved

    def test_route_avoids_dead_link(self):
        mesh = Mesh(4, 4, 2, 2)
        mesh.fail_link(0, 1)
        path = mesh.route(0, 3)
        assert path[0] == 0 and path[-1] == 3
        hops = set(zip(path, path[1:]))
        assert (0, 1) not in hops and (1, 0) not in hops

    def test_fault_route_falls_back_only_when_needed(self):
        mesh = Mesh(4, 4, 2, 2)
        mesh.fail_link(1, 2)
        # XY path 0->3 crosses 1-2: must take the detour.
        assert fault_route(mesh, 0, 3) != xy_route(mesh, 0, 3)
        # XY path 4->7 does not touch the dead link: unchanged.
        assert fault_route(mesh, 4, 7) == xy_route(mesh, 4, 7)

    def test_disconnecting_failure_rejected(self):
        mesh = Mesh(2, 1, 1, 1)  # single link 0-1
        with pytest.raises(ValueError, match="disconnect"):
            mesh.fail_link(0, 1)
        assert not mesh.dead_links  # rolled back

    def test_non_adjacent_rejected(self):
        mesh = Mesh(4, 4, 2, 2)
        with pytest.raises(ValueError):
            mesh.fail_link(0, 5)

    def test_machine_runs_after_link_death(self):
        m = _machine()
        m.fail_link(1, 2)
        cycles = _run(m, 0, list(range(64)))
        assert cycles > 0
        assert m.check_invariants() == []


class TestDramTransients:
    def test_errors_charged_and_counted(self):
        m = _machine()
        import random

        m.dram.set_fault_model(
            0.5, 4, random.Random(1), retry_cost=m.latency.dram_retry
        )
        _run(m, 0, list(range(512)))
        st = m.dram.stats
        assert st.transient_errors > 0
        assert st.retries >= st.transient_errors
        assert st.retry_cycles > 0

    def test_zero_probability_is_free(self):
        a, b = _machine(), _machine()
        import random

        b.dram.set_fault_model(0.0, 4, random.Random(1))
        ca = _run(a, 0, list(range(256)))
        cb = _run(b, 0, list(range(256)))
        assert ca == cb
        assert b.dram.stats.retry_cycles == 0

    def test_retry_budget_bounds_the_penalty(self):
        import random

        m = _machine()
        m.dram.set_fault_model(0.95, 2, random.Random(1))
        _run(m, 0, list(range(128)))
        st = m.dram.stats
        assert st.retries_exhausted > 0
        # Never more than max_retries retries per access.
        assert st.retries <= 2 * st.accesses

    def test_latency_model_backoff_is_exponential(self):
        m = _machine()
        base = 100
        r1 = m.latency.dram_retry(1, base)
        r2 = m.latency.dram_retry(2, base)
        r3 = m.latency.dram_retry(3, base)
        assert (r2 - base) == 2 * (r1 - base)
        assert (r3 - base) == 4 * (r1 - base)
        with pytest.raises(ValueError):
            m.latency.dram_retry(0, base)


class TestInjector:
    def test_task_zero_events_fire_at_activation(self):
        m = _machine()
        schedule = parse_fault_spec("bank:4@task=0")
        injector = m.attach_faults(schedule)
        assert 4 in m.llc.dead_banks
        assert injector.pending_events == 0

    def test_events_fire_in_order_at_their_triggers(self):
        m = _machine()
        schedule = parse_fault_spec("bank:4@task=2,link:0-1@task=5")
        injector = m.attach_faults(schedule)
        assert not m.llc.dead_banks and injector.pending_events == 2
        injector.on_task_boundary(1)
        assert not m.llc.dead_banks
        injector.on_task_boundary(2)
        assert 4 in m.llc.dead_banks and injector.pending_events == 1
        injector.on_task_boundary(7)  # past the trigger still fires
        assert m.mesh.dead_links and injector.pending_events == 0

    def test_double_attach_rejected(self):
        m = _machine()
        m.attach_faults(parse_fault_spec("bank:4@task=0"))
        with pytest.raises(RuntimeError, match="already attached"):
            m.attach_faults(parse_fault_spec("bank:5@task=0"))

    def test_non_adjacent_link_fault_rejected_up_front(self):
        m = _machine()
        with pytest.raises(ValueError, match="neighbours"):
            FaultInjector(m, parse_fault_spec("link:0-5@task=9"))

    def test_snapshot_aggregates_machine_state(self):
        m = _machine()
        injector = m.attach_faults(
            parse_fault_spec("bank:4@task=0,link:0-1@task=0"), seed=3
        )
        _run(m, 0, list(range(128)))
        snap = injector.snapshot()
        assert snap.banks_failed == 1
        assert snap.links_failed == 1
        assert snap.dead_bank_redirects == m.policy.stats.dead_bank_redirects
        assert snap.mean_hop_inflation > 0
        assert snap.pending_events == 0


class TestEndToEnd:
    def test_build_machine_attaches_schedule_from_config(self):
        cfg = replace(
            scaled_config(1 / 2048), fault_spec="bank:6@task=0"
        )
        m = build_machine(cfg, "snuca")
        assert m.fault_injector is not None
        assert 6 in m.llc.dead_banks

    def test_dead_bank_access_raises_if_remap_bypassed(self):
        m = _machine()
        m.llc.kill_bank(8)
        with pytest.raises(RuntimeError, match="dead LLC bank"):
            m.llc.access(8, 8, False)
