"""The invariant checker: clean machines pass, corrupted machines fail."""

from dataclasses import replace

import numpy as np
import pytest

from repro.faults.invariants import (
    InvariantChecker,
    InvariantError,
    check_machine,
)
from repro.sim.machine import build_machine
from tests.conftest import tiny_config

CFG = tiny_config()


def _machine(policy="snuca"):
    return build_machine(CFG, policy)


def _run(machine, core, blocks, writes=None):
    pblocks = np.asarray(blocks, dtype=np.int64)
    if writes is None:
        w = np.zeros(len(blocks), dtype=bool)
    else:
        w = np.asarray(writes, dtype=bool)
    return machine._run_blocks(core, pblocks, w)


class TestCleanMachines:
    def test_fresh_machine_is_clean(self):
        assert check_machine(_machine()) == []

    @pytest.mark.parametrize("policy", ["snuca", "rnuca", "dnuca", "tdnuca"])
    def test_exercised_machine_is_clean(self, policy):
        m = _machine(policy)
        rng = np.random.default_rng(42)
        for core in range(4):
            blocks = rng.integers(0, 2048, size=300)
            writes = rng.random(300) < 0.4
            _run(m, core, blocks, writes)
        assert check_machine(m) == []

    def test_clean_after_bank_and_link_death(self):
        m = _machine()
        _run(m, 0, list(range(512)), [True] * 512)
        m.fail_bank(9)
        m.fail_link(5, 6)
        _run(m, 1, list(range(512)))
        assert check_machine(m) == []


class TestCorruptionDetected:
    def test_untracked_l1_line(self):
        m = _machine()
        m.l1s[0].fill(17)  # L1 copy the directory never saw
        m.llc.banks[1].fill(17)  # keep inclusion satisfied
        violations = check_machine(m)
        assert any(v.check == "directory-presence" for v in violations)

    def test_dirty_l1_line_without_ownership(self):
        m = _machine()
        _run(m, 0, [17])  # clean, tracked fill
        m.l1s[0].access(17, True)  # dirty it behind the directory's back
        violations = check_machine(m)
        assert any(v.check == "directory-owner" for v in violations)

    def test_owner_without_l1_copy(self):
        m = _machine()
        _run(m, 0, [17], [True])
        m.l1s[0]._map[17 & m.l1s[0]._set_mask].pop(17)  # corrupt the map
        violations = check_machine(m)
        checks = {v.check for v in violations}
        assert "directory-owner" in checks or "occupancy-balance" in checks

    def test_inclusion_violation(self):
        m = _machine()
        _run(m, 0, [17])
        for bank in m.llc.banks:
            bank.invalidate(17)  # LLC drops it, L1 keeps it: not inclusive
        violations = check_machine(m)
        assert any(v.check == "llc-inclusion" for v in violations)

    def test_inclusion_not_enforced_for_tdnuca(self):
        m = _machine("tdnuca")
        m.rrts[0].register(0, 1 << 20, 0)  # bypass everything
        _run(m, 0, list(range(16)))
        # Bypassed lines live in L1 with no LLC copy — legal under TD-NUCA.
        assert all(not b.occupancy for b in m.llc.banks)
        assert m.l1s[0].occupancy > 0
        assert check_machine(m) == []

    def test_dead_bank_residency(self):
        m = _machine()
        m.llc.kill_bank(4)
        m.llc.banks[4]._occupancy = 0  # bypass guard; plant raw state
        m.llc.banks[4]._map[0][12345] = 0
        m.llc.banks[4]._ways[0][0] = 12345
        m.llc.banks[4]._occupancy = 1
        violations = check_machine(m)
        assert any(v.check == "dead-bank-residency" for v in violations)

    def test_occupancy_counter_drift(self):
        m = _machine()
        _run(m, 0, [1, 2, 3])
        m.l1s[0]._occupancy += 1
        violations = check_machine(m)
        assert any(v.check == "occupancy-balance" for v in violations)


class TestChecker:
    def test_interval_schedules_full_sweeps(self):
        m = _machine()
        checker = InvariantChecker(interval=4)
        for task in range(1, 9):
            checker.on_task_boundary(m, task)
        assert checker.checks_run == 8
        assert checker.full_sweeps == 2  # tasks 4 and 8

    def test_checker_raises_with_readable_message(self):
        m = _machine()
        m.l1s[0].fill(17)
        checker = InvariantChecker(interval=1)
        with pytest.raises(InvariantError) as exc:
            checker.on_task_boundary(m, 1)
        assert "directory" in str(exc.value)
        assert checker.violations_found > 0

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            InvariantChecker(interval=0)

    def test_strict_machine_runs_checker(self):
        cfg = replace(CFG, strict_invariants=True, strict_check_interval=2)
        m = build_machine(cfg, "snuca")
        assert m.invariant_checker is not None
        stats = m.collect_stats()  # triggers the final full sweep
        assert stats.extra["invariants"]["violations"] == 0
        assert stats.extra["invariants"]["full_sweeps"] >= 1
