"""Fault-spec parsing: grammar, validation and rejection of nonsense."""

import pytest

from repro.faults.schedule import (
    DEFAULT_DRAM_RETRIES,
    BankFault,
    DramFaultModel,
    FaultSchedule,
    LinkFault,
    parse_fault_spec,
)


class TestParsing:
    def test_empty_spec_is_falsy(self):
        schedule = parse_fault_spec("")
        assert not schedule
        assert schedule.last_trigger == 0

    def test_single_bank_fault(self):
        schedule = parse_fault_spec("bank:5@task=100")
        assert schedule.bank_faults == (BankFault(5, 100),)
        assert schedule.link_faults == ()
        assert schedule.dram is None
        assert schedule.last_trigger == 100

    def test_single_link_fault(self):
        schedule = parse_fault_spec("link:3-7@task=250")
        assert schedule.link_faults == (LinkFault(3, 7, 250),)

    def test_dram_fault_default_retries(self):
        schedule = parse_fault_spec("dram:transient:p=1e-4")
        assert schedule.dram == DramFaultModel(1e-4, DEFAULT_DRAM_RETRIES)

    def test_dram_fault_explicit_retries(self):
        schedule = parse_fault_spec("dram:transient:p=0.01:retries=3")
        assert schedule.dram == DramFaultModel(0.01, 3)

    def test_combined_spec(self):
        schedule = parse_fault_spec(
            "bank:5@task=100,link:3-7@task=250,dram:transient:p=1e-4"
        )
        assert bool(schedule)
        assert len(schedule.bank_faults) == 1
        assert len(schedule.link_faults) == 1
        assert schedule.dram is not None
        assert schedule.last_trigger == 250

    def test_whitespace_and_empty_items_tolerated(self):
        schedule = parse_fault_spec(" bank:1@task=0 , ,link:0-1@task=2 ")
        assert schedule.bank_faults == (BankFault(1, 0),)
        assert schedule.link_faults == (LinkFault(0, 1, 2),)


class TestRejection:
    @pytest.mark.parametrize(
        "spec",
        [
            "bank:5",
            "bank:5@task=x",
            "bank:-1@task=0",
            "link:3@task=0",
            "link:3-7",
            "dram:transient",
            "dram:transient:p=",
            "nonsense",
            "bank:5@task=1;link:0-1@task=2",  # wrong separator
        ],
    )
    def test_malformed_items(self, spec):
        with pytest.raises(ValueError):
            parse_fault_spec(spec)

    def test_link_endpoints_must_differ(self):
        with pytest.raises(ValueError, match="endpoints"):
            parse_fault_spec("link:3-3@task=0")

    def test_duplicate_bank_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            parse_fault_spec("bank:5@task=1,bank:5@task=2")

    def test_duplicate_link_rejected_either_direction(self):
        with pytest.raises(ValueError, match="twice"):
            parse_fault_spec("link:3-7@task=1,link:7-3@task=2")

    def test_multiple_dram_models_rejected(self):
        with pytest.raises(ValueError, match="one dram"):
            parse_fault_spec("dram:transient:p=0.1,dram:transient:p=0.2")

    @pytest.mark.parametrize("p", ["1.0", "1.5", "-0.1"])
    def test_probability_out_of_range(self, p):
        with pytest.raises(ValueError, match="probability"):
            parse_fault_spec(f"dram:transient:p={p}")

    def test_zero_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            parse_fault_spec("dram:transient:p=0.1:retries=0")


class TestGeometryValidation:
    def test_bank_out_of_range(self):
        schedule = parse_fault_spec("bank:16@task=0")
        with pytest.raises(ValueError, match="bank 16"):
            schedule.validate_against(16, 16)

    def test_tile_out_of_range(self):
        schedule = parse_fault_spec("link:0-16@task=0")
        with pytest.raises(ValueError, match="tile 16"):
            schedule.validate_against(16, 16)

    def test_killing_every_bank_rejected(self):
        spec = ",".join(f"bank:{b}@task=0" for b in range(4))
        schedule = parse_fault_spec(spec)
        with pytest.raises(ValueError, match="every LLC bank"):
            schedule.validate_against(4, 4)

    def test_valid_schedule_passes(self):
        schedule = parse_fault_spec("bank:5@task=0,link:3-7@task=0")
        schedule.validate_against(16, 16)


class TestConfigIntegration:
    def test_config_validate_rejects_bad_spec(self):
        from dataclasses import replace

        from tests.conftest import tiny_config

        cfg = replace(tiny_config(), fault_spec="bank:99@task=0")
        with pytest.raises(ValueError, match="bank 99"):
            cfg.validate()

    def test_config_validate_accepts_good_spec(self):
        from dataclasses import replace

        from tests.conftest import tiny_config

        cfg = replace(tiny_config(), fault_spec="bank:5@task=10")
        cfg.validate()


def test_schedule_is_hashable_and_frozen():
    schedule = FaultSchedule((BankFault(1, 2),), (), None)
    hash(schedule)
    with pytest.raises(AttributeError):
        schedule.dram = DramFaultModel(0.5)
