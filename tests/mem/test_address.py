"""Block/page address arithmetic, including property-based checks."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mem.address import AddressMap

AMAP = AddressMap(64, 4096, 42)

addresses = st.integers(min_value=0, max_value=(1 << 42) - 1)
sizes = st.integers(min_value=0, max_value=1 << 20)


class TestConstruction:
    @pytest.mark.parametrize("block,page", [(48, 4096), (64, 3000), (0, 4096)])
    def test_bad_sizes_rejected(self, block, page):
        with pytest.raises(ValueError):
            AddressMap(block, page)

    def test_page_must_be_block_multiple(self):
        with pytest.raises(ValueError):
            AddressMap(128, 192)

    def test_derived_fields(self):
        assert AMAP.block_shift == 6
        assert AMAP.page_shift == 12
        assert AMAP.blocks_per_page == 64
        assert AMAP.max_physical_address == (1 << 42) - 1


class TestScalarArithmetic:
    def test_block_of(self):
        assert AMAP.block_of(0) == 0
        assert AMAP.block_of(63) == 0
        assert AMAP.block_of(64) == 1
        assert AMAP.block_of(4096) == 64

    def test_page_of_block(self):
        assert AMAP.page_of_block(0) == 0
        assert AMAP.page_of_block(63) == 0
        assert AMAP.page_of_block(64) == 1

    def test_bases_invert(self):
        assert AMAP.block_base(5) == 320
        assert AMAP.page_base(2) == 8192
        assert AMAP.block_of(AMAP.block_base(1234)) == 1234
        assert AMAP.page_of(AMAP.page_base(99)) == 99

    def test_alignment(self):
        assert AMAP.align_down_block(100) == 64
        assert AMAP.align_up_block(100) == 128
        assert AMAP.align_up_block(128) == 128
        assert AMAP.align_down_page(5000) == 4096
        assert AMAP.align_up_page(4097) == 8192

    def test_is_block_aligned(self):
        assert AMAP.is_block_aligned(0)
        assert AMAP.is_block_aligned(640)
        assert not AMAP.is_block_aligned(1)


class TestRanges:
    def test_block_range_covers_partial_blocks(self):
        # [100, 200) overlaps blocks 1..3
        assert list(AMAP.block_range(100, 100)) == [1, 2, 3]

    def test_block_range_empty(self):
        assert len(AMAP.block_range(100, 0)) == 0
        assert len(AMAP.block_range(100, -5)) == 0

    def test_inner_block_range_excludes_partial(self):
        # [100, 300): fully contained blocks are 2..3 ([128,192),[192,256))
        assert list(AMAP.inner_block_range(100, 200)) == [2, 3]

    def test_inner_block_range_aligned_equals_overlap(self):
        assert list(AMAP.inner_block_range(128, 192)) == list(
            AMAP.block_range(128, 192)
        )

    def test_inner_block_range_too_small(self):
        assert len(AMAP.inner_block_range(10, 30)) == 0

    def test_page_range(self):
        assert list(AMAP.page_range(0, 4097)) == [0, 1]

    @given(addresses, sizes)
    def test_inner_subset_of_overlap(self, start, size):
        inner = AMAP.inner_block_range(start, size)
        overlap = AMAP.block_range(start, size)
        assert set(inner) <= set(overlap)

    @given(addresses, st.integers(min_value=1, max_value=1 << 20))
    def test_overlap_covers_every_byte(self, start, size):
        blocks = AMAP.block_range(start, size)
        assert AMAP.block_of(start) == blocks.start
        assert AMAP.block_of(start + size - 1) == blocks.stop - 1

    @given(addresses)
    def test_align_down_bounds(self, addr):
        down = AMAP.align_down_block(addr)
        assert down <= addr < down + AMAP.block_bytes
        assert AMAP.is_block_aligned(down)


class TestVectorized:
    def test_blocks_of_matches_scalar(self):
        addrs = np.array([0, 63, 64, 4096, 999999])
        expected = [AMAP.block_of(int(a)) for a in addrs]
        assert AMAP.blocks_of(addrs).tolist() == expected

    def test_pages_of_blocks_matches_scalar(self):
        blocks = np.array([0, 63, 64, 128, 123456])
        expected = [AMAP.page_of_block(int(b)) for b in blocks]
        assert AMAP.pages_of_blocks(blocks).tolist() == expected
