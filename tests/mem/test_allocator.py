"""Virtual allocator."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.allocator import VirtualAllocator


class TestAllocate:
    def test_alignment_default(self):
        alloc = VirtualAllocator(alignment=64)
        r = alloc.allocate(100)
        assert r.start % 64 == 0

    def test_explicit_alignment(self):
        alloc = VirtualAllocator()
        r = alloc.allocate(10, align=4096)
        assert r.start % 4096 == 0

    def test_unaligned_allowed(self):
        alloc = VirtualAllocator(base=0x1001, alignment=64)
        r = alloc.allocate(10, align=1)
        assert r.start == 0x1001

    def test_names_kept(self):
        alloc = VirtualAllocator()
        assert alloc.allocate(8, "matrix").name == "matrix"

    @pytest.mark.parametrize("size", [0, -5])
    def test_bad_size(self, size):
        with pytest.raises(ValueError):
            VirtualAllocator().allocate(size)

    def test_bad_alignment(self):
        with pytest.raises(ValueError):
            VirtualAllocator(alignment=48)
        with pytest.raises(ValueError):
            VirtualAllocator().allocate(8, align=3)

    def test_array(self):
        r = VirtualAllocator().allocate_array(10, 8)
        assert r.size == 80

    def test_array_bad_args(self):
        with pytest.raises(ValueError):
            VirtualAllocator().allocate_array(0, 8)

    def test_bookkeeping(self):
        alloc = VirtualAllocator()
        alloc.allocate(100)
        alloc.allocate(200)
        assert len(alloc.regions) == 2
        assert alloc.bytes_allocated == 300


@given(st.lists(st.integers(min_value=1, max_value=10000), min_size=1, max_size=50))
def test_allocations_never_overlap(sizes):
    alloc = VirtualAllocator()
    regions = [alloc.allocate(s) for s in sizes]
    for i, a in enumerate(regions):
        for b in regions[i + 1 :]:
            assert not a.overlaps(b)


@given(st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=30))
def test_allocations_monotonic(sizes):
    alloc = VirtualAllocator()
    regions = [alloc.allocate(s) for s in sizes]
    for a, b in zip(regions, regions[1:]):
        assert b.start >= a.end
