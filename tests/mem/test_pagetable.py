"""Page table: first-touch allocation, fragmentation, range collapsing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.address import AddressMap
from repro.mem.pagetable import PageTable
from repro.mem.region import Region

AMAP = AddressMap(64, 4096)


def make_pt(frag=0.0, seed=0):
    return PageTable(AMAP, frag, seed)


class TestTranslation:
    def test_first_touch_allocates(self):
        pt = make_pt()
        assert not pt.is_mapped(5)
        frame = pt.translate_page(5)
        assert pt.is_mapped(5)
        assert pt.translate_page(5) == frame  # stable

    def test_distinct_pages_distinct_frames(self):
        pt = make_pt()
        frames = {pt.translate_page(p) for p in range(100)}
        assert len(frames) == 100

    def test_contiguous_without_fragmentation(self):
        pt = make_pt(0.0)
        frames = [pt.translate_page(p) for p in range(10)]
        assert frames == list(range(frames[0], frames[0] + 10))

    def test_fragmentation_creates_gaps(self):
        pt = make_pt(1.0, seed=1)
        frames = [pt.translate_page(p) for p in range(20)]
        gaps = [b - a for a, b in zip(frames, frames[1:])]
        assert any(g > 1 for g in gaps)

    def test_byte_translation_preserves_offset(self):
        pt = make_pt()
        vaddr = 5 * 4096 + 123
        paddr = pt.translate(vaddr)
        assert paddr % 4096 == 123

    def test_deterministic_across_instances(self):
        a, b = make_pt(0.5, seed=7), make_pt(0.5, seed=7)
        for p in range(50):
            assert a.translate_page(p) == b.translate_page(p)

    def test_bad_fragmentation(self):
        with pytest.raises(ValueError):
            PageTable(AMAP, 1.5)

    def test_ensure_mapped(self):
        pt = make_pt()
        pt.ensure_mapped(Region(0, 3 * 4096))
        assert pt.pages_mapped == 3


class TestVectorizedTranslation:
    @given(
        st.lists(st.integers(0, 1 << 20), min_size=1, max_size=200),
        st.floats(0, 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_scalar(self, vblocks, frag):
        pt = make_pt(frag, seed=3)
        arr = np.array(vblocks, dtype=np.int64)
        got = pt.translate_blocks(arr)
        pt2 = make_pt(frag, seed=3)
        # Scalar reference must touch pages in the same (sorted-unique)
        # order the vectorized path does.
        shift = AMAP.page_shift - AMAP.block_shift
        for p in sorted({b >> shift for b in vblocks}):
            pt2.translate_page(p)
        expected = [
            (pt2.translate_page(b >> shift) << shift) | (b & ((1 << shift) - 1))
            for b in vblocks
        ]
        assert got.tolist() == expected

    def test_same_page_blocks_stay_together(self):
        pt = make_pt()
        out = pt.translate_blocks(np.array([0, 1, 2, 63], dtype=np.int64))
        assert out[1] - out[0] == 1
        assert out[3] - out[0] == 63


class TestPhysicalRanges:
    def test_empty_region(self):
        assert make_pt().physical_ranges(Region(0, 0)) == []

    def test_single_page_clipped(self):
        pt = make_pt()
        ranges = pt.physical_ranges(Region(100, 200))
        assert len(ranges) == 1
        start, end = ranges[0]
        assert end - start == 200

    def test_contiguous_collapse(self):
        pt = make_pt(0.0)
        ranges = pt.physical_ranges(Region(0, 4 * 4096))
        assert len(ranges) == 1
        assert ranges[0][1] - ranges[0][0] == 4 * 4096

    def test_full_fragmentation_splits(self):
        pt = make_pt(1.0, seed=2)
        ranges = pt.physical_ranges(Region(0, 4 * 4096))
        assert len(ranges) == 4

    @given(st.integers(0, 1 << 20), st.integers(1, 5 * 4096), st.floats(0, 1))
    @settings(max_examples=25, deadline=None)
    def test_ranges_cover_exactly_region_bytes(self, start, size, frag):
        pt = make_pt(frag, seed=11)
        ranges = pt.physical_ranges(Region(start, size))
        assert sum(e - s for s, e in ranges) == size
        for s, e in ranges:
            assert e > s

    def test_matches_translate(self):
        pt = make_pt(0.8, seed=5)
        region = Region(1000, 3 * 4096)
        ranges = pt.physical_ranges(region)
        assert ranges[0][0] == pt.translate(region.start)
        assert ranges[-1][1] == pt.translate(region.end - 1) + 1


class TestExhaustion:
    def test_physical_space_exhaustion(self):
        small = AddressMap(64, 4096, physical_address_bits=14)  # 4 frames
        pt = PageTable(small, 0.0)
        for p in range(3):
            pt.translate_page(p)
        with pytest.raises(MemoryError):
            pt.translate_page(99)
