"""Region geometry."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.address import AddressMap
from repro.mem.region import Region

AMAP = AddressMap(64, 4096)


class TestBasics:
    def test_end_and_truthiness(self):
        r = Region(100, 50)
        assert r.end == 150
        assert bool(r)
        assert not Region(100, 0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Region(-1, 10)
        with pytest.raises(ValueError):
            Region(0, -10)

    def test_contains(self):
        r = Region(100, 50)
        assert r.contains(100)
        assert r.contains(149)
        assert not r.contains(150)
        assert not r.contains(99)

    def test_contains_region(self):
        outer = Region(0, 100)
        assert outer.contains_region(Region(10, 20))
        assert outer.contains_region(Region(0, 100))
        assert not outer.contains_region(Region(90, 20))


class TestOverlap:
    def test_overlapping(self):
        assert Region(0, 100).overlaps(Region(50, 100))
        assert Region(50, 100).overlaps(Region(0, 100))

    def test_adjacent_do_not_overlap(self):
        assert not Region(0, 100).overlaps(Region(100, 100))

    def test_empty_never_overlaps(self):
        assert not Region(50, 0).overlaps(Region(0, 100))

    def test_intersection(self):
        r = Region(0, 100).intersection(Region(50, 100))
        assert (r.start, r.size) == (50, 50)

    def test_disjoint_intersection_empty(self):
        assert not Region(0, 10).intersection(Region(20, 10))

    @given(
        st.integers(0, 10000), st.integers(0, 500),
        st.integers(0, 10000), st.integers(0, 500),
    )
    def test_overlap_symmetric(self, s1, z1, s2, z2):
        a, b = Region(s1, z1), Region(s2, z2)
        assert a.overlaps(b) == b.overlaps(a)
        if a.overlaps(b):
            inter = a.intersection(b)
            assert inter.size > 0
            assert a.contains(inter.start) and b.contains(inter.start)


class TestSplit:
    def test_even_split(self):
        parts = Region(0, 100).split(25)
        assert [p.size for p in parts] == [25, 25, 25, 25]

    def test_ragged_split(self):
        parts = Region(0, 100).split(30)
        assert [p.size for p in parts] == [30, 30, 30, 10]

    def test_split_recomposes(self):
        r = Region(1234, 999)
        parts = r.split(100)
        assert parts[0].start == r.start
        assert parts[-1].end == r.end
        for a, b in zip(parts, parts[1:]):
            assert a.end == b.start

    def test_bad_chunk(self):
        with pytest.raises(ValueError):
            Region(0, 10).split(0)


class TestSubregion:
    def test_basic(self):
        sub = Region(100, 100).subregion(10, 20, "x")
        assert (sub.start, sub.size, sub.name) == (110, 20, "x")

    @pytest.mark.parametrize("off,size", [(-1, 10), (0, 101), (95, 10)])
    def test_out_of_bounds(self, off, size):
        with pytest.raises(ValueError):
            Region(100, 100).subregion(off, size)


class TestGeometry:
    def test_blocks(self):
        r = Region(100, 100)  # overlaps blocks 1..3
        assert list(r.blocks(AMAP)) == [1, 2, 3]
        assert r.num_blocks(AMAP) == 3

    def test_inner_blocks(self):
        r = Region(100, 200)
        assert list(r.inner_blocks(AMAP)) == [2, 3]

    def test_pages(self):
        r = Region(4000, 200)
        assert list(r.pages(AMAP)) == [0, 1]
