"""TLB: hit/miss accounting, LRU replacement, shootdowns."""

import pytest

from repro.mem.address import AddressMap
from repro.mem.pagetable import PageTable
from repro.mem.tlb import TLB

AMAP = AddressMap(64, 4096)


def make_tlb(entries=4):
    return TLB(PageTable(AMAP, 0.0), entries)


class TestLookups:
    def test_first_lookup_misses(self):
        tlb = make_tlb()
        tlb.lookup_page(0)
        assert tlb.stats.misses == 1
        assert tlb.stats.hits == 0

    def test_second_lookup_hits(self):
        tlb = make_tlb()
        tlb.lookup_page(0)
        tlb.lookup_page(0)
        assert tlb.stats.hits == 1

    def test_translation_matches_pagetable(self):
        pt = PageTable(AMAP, 0.0)
        tlb = TLB(pt, 8)
        assert tlb.lookup_page(7) == pt.translate_page(7)

    def test_byte_lookup(self):
        tlb = make_tlb()
        paddr = tlb.lookup(4096 + 17)
        assert paddr % 4096 == 17

    def test_hit_ratio(self):
        tlb = make_tlb()
        for _ in range(9):
            tlb.lookup_page(0)
        assert tlb.stats.hit_ratio == pytest.approx(8 / 9)


class TestReplacement:
    def test_lru_eviction(self):
        tlb = make_tlb(entries=2)
        tlb.lookup_page(0)
        tlb.lookup_page(1)
        tlb.lookup_page(2)  # evicts 0
        tlb.lookup_page(1)  # still resident
        assert tlb.stats.hits == 1
        tlb.lookup_page(0)  # miss again
        assert tlb.stats.misses == 4

    def test_touch_refreshes_lru(self):
        tlb = make_tlb(entries=2)
        tlb.lookup_page(0)
        tlb.lookup_page(1)
        tlb.lookup_page(0)  # 1 becomes LRU
        tlb.lookup_page(2)  # evicts 1
        tlb.lookup_page(0)
        assert tlb.stats.hits == 2

    def test_capacity_bound(self):
        tlb = make_tlb(entries=3)
        for p in range(10):
            tlb.lookup_page(p)
        assert tlb.occupancy == 3

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            make_tlb(entries=0)


class TestInvalidation:
    def test_invalidate_present(self):
        tlb = make_tlb()
        tlb.lookup_page(0)
        assert tlb.invalidate(0)
        assert tlb.stats.invalidations == 1
        tlb.lookup_page(0)
        assert tlb.stats.misses == 2

    def test_invalidate_absent(self):
        tlb = make_tlb()
        assert not tlb.invalidate(42)
        assert tlb.stats.invalidations == 0

    def test_flush(self):
        tlb = make_tlb()
        for p in range(3):
            tlb.lookup_page(p)
        tlb.flush()
        assert tlb.occupancy == 0
        assert tlb.stats.invalidations == 3


class TestStatsMerge:
    def test_merge(self):
        a, b = make_tlb(), make_tlb()
        a.lookup_page(0)
        b.lookup_page(0)
        b.lookup_page(0)
        a.stats.merge(b.stats)
        assert a.stats.misses == 2
        assert a.stats.hits == 1
