"""XY routing."""

from hypothesis import given, strategies as st

from repro.noc.routing import hops, xy_route
from repro.noc.topology import Mesh

MESH = Mesh(4, 4)
tiles = st.integers(0, 15)


class TestRoute:
    def test_self_route(self):
        assert xy_route(MESH, 7, 7) == [7]

    def test_straight_line(self):
        assert xy_route(MESH, 0, 3) == [0, 1, 2, 3]

    def test_x_then_y(self):
        # XY: horizontal first, then vertical.
        assert xy_route(MESH, 0, 5) == [0, 1, 5]
        assert xy_route(MESH, 5, 0) == [5, 4, 0]

    def test_corner_to_corner(self):
        route = xy_route(MESH, 0, 15)
        assert route == [0, 1, 2, 3, 7, 11, 15]

    @given(tiles, tiles)
    def test_length_is_hops_plus_one(self, a, b):
        assert len(xy_route(MESH, a, b)) == hops(MESH, a, b) + 1

    @given(tiles, tiles)
    def test_endpoints(self, a, b):
        route = xy_route(MESH, a, b)
        assert route[0] == a and route[-1] == b

    @given(tiles, tiles)
    def test_every_step_is_one_hop(self, a, b):
        route = xy_route(MESH, a, b)
        for u, v in zip(route, route[1:]):
            assert MESH.hops(u, v) == 1

    @given(tiles, tiles)
    def test_no_tile_repeats(self, a, b):
        route = xy_route(MESH, a, b)
        assert len(set(route)) == len(route)
