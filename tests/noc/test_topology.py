"""Mesh topology: coordinates, distances, clusters."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.topology import Mesh

MESH = Mesh(4, 4, 2, 2)
tiles = st.integers(0, 15)


class TestConstruction:
    def test_counts(self):
        assert MESH.num_tiles == 16
        assert MESH.num_clusters == 4
        assert MESH.cluster_size == 4

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            Mesh(0, 4)
        with pytest.raises(ValueError):
            Mesh(4, 4, 3, 2)

    def test_non_square(self):
        m = Mesh(8, 2, 2, 2)
        assert m.num_tiles == 16
        assert m.num_clusters == 4


class TestCoordinates:
    def test_row_major(self):
        assert MESH.coords(0) == (0, 0)
        assert MESH.coords(3) == (3, 0)
        assert MESH.coords(4) == (0, 1)
        assert MESH.coords(15) == (3, 3)

    @given(tiles)
    def test_roundtrip(self, t):
        x, y = MESH.coords(t)
        assert MESH.tile_at(x, y) == t

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            MESH.coords(16)
        with pytest.raises(ValueError):
            MESH.tile_at(4, 0)


class TestDistances:
    def test_manhattan(self):
        assert MESH.hops(0, 0) == 0
        assert MESH.hops(0, 3) == 3
        assert MESH.hops(0, 15) == 6
        assert MESH.hops(5, 10) == 2

    @given(tiles, tiles)
    def test_symmetric(self, a, b):
        assert MESH.hops(a, b) == MESH.hops(b, a)

    @given(tiles, tiles, tiles)
    def test_triangle_inequality(self, a, b, c):
        assert MESH.hops(a, c) <= MESH.hops(a, b) + MESH.hops(b, c)

    def test_diameter(self):
        assert MESH.diameter() == 6

    def test_theoretical_average_distance(self):
        # Paper Section V-B: "the theoretical average NUCA distance in a
        # 4x4 mesh is 2.5".
        total = sum(
            MESH.hops(a, b) for a in range(16) for b in range(16)
        )
        assert total / 256 == pytest.approx(2.5)

    def test_mean_distance_from_center_vs_corner(self):
        assert MESH.mean_distance_from(5) < MESH.mean_distance_from(0)


class TestClusters:
    def test_quadrants(self):
        assert MESH.cluster_tiles(0) == (0, 1, 4, 5)
        assert MESH.cluster_tiles(1) == (2, 3, 6, 7)
        assert MESH.cluster_tiles(2) == (8, 9, 12, 13)
        assert MESH.cluster_tiles(3) == (10, 11, 14, 15)

    @given(tiles)
    def test_tile_in_own_cluster(self, t):
        assert t in MESH.local_cluster_tiles(t)

    def test_clusters_partition_tiles(self):
        seen = []
        for c in range(MESH.num_clusters):
            seen.extend(MESH.cluster_tiles(c))
        assert sorted(seen) == list(range(16))

    def test_cluster_diameter_bounded(self):
        # Worst-case distance inside a quadrant is 2 (paper Section III:
        # cluster-wide NoC diameter instead of chip-wide).
        for c in range(4):
            ts = MESH.cluster_tiles(c)
            assert max(MESH.hops(a, b) for a in ts for b in ts) == 2

    def test_bad_cluster_index(self):
        with pytest.raises(ValueError):
            MESH.cluster_tiles(4)
