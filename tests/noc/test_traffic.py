"""NoC traffic accounting."""

import pytest

from repro.noc.traffic import (
    CONTROL_BYTES,
    MessageClass,
    TrafficStats,
    data_message_bytes,
)


class TestMessageBytes:
    def test_data_message_includes_header(self):
        assert data_message_bytes(64) == 72

    def test_control_size(self):
        assert CONTROL_BYTES == 8


class TestRecording:
    def test_router_bytes_counts_all_routers(self):
        t = TrafficStats()
        t.record_message(MessageClass.DATA, 72, hop_count=3)
        # 3 hops -> 4 routers traversed.
        assert t.router_bytes == 72 * 4

    def test_zero_hops_still_one_router(self):
        t = TrafficStats()
        t.record_message(MessageClass.REQUEST, 8, 0)
        assert t.router_bytes == 8

    def test_flit_hops_ceil(self):
        t = TrafficStats(flit_bytes=16)
        t.record_message(MessageClass.DATA, 72, 1)  # 5 flits x 2 routers
        assert t.flit_hops == 10

    def test_count_multiplier(self):
        t = TrafficStats()
        t.record_message(MessageClass.DATA, 72, 2, count=10)
        assert t.messages == 10
        assert t.router_bytes == 72 * 3 * 10

    def test_per_class_breakdown(self):
        t = TrafficStats()
        t.record_message(MessageClass.DATA, 72, 1)
        t.record_message(MessageClass.REQUEST, 8, 1)
        t.record_message(MessageClass.DATA, 72, 5)
        assert t.bytes_by_class[MessageClass.DATA] == 144
        assert t.bytes_by_class[MessageClass.REQUEST] == 8

    def test_negative_rejected(self):
        t = TrafficStats()
        with pytest.raises(ValueError):
            t.record_message(MessageClass.DATA, -1, 0)
        with pytest.raises(ValueError):
            t.record_message(MessageClass.DATA, 8, -1)


class TestNucaDistance:
    def test_mean(self):
        t = TrafficStats()
        t.record_nuca_distance(0)
        t.record_nuca_distance(5)
        assert t.mean_nuca_distance == pytest.approx(2.5)

    def test_empty_mean_zero(self):
        assert TrafficStats().mean_nuca_distance == 0.0

    def test_counted_separately_from_messages(self):
        t = TrafficStats()
        t.record_nuca_distance(3, count=4)
        assert t.messages == 0
        assert t.nuca_distance_count == 4
        assert t.nuca_distance_sum == 12


class TestMerge:
    def test_merge_sums_everything(self):
        a, b = TrafficStats(), TrafficStats()
        a.record_message(MessageClass.DATA, 72, 1)
        b.record_message(MessageClass.DATA, 72, 2)
        b.record_nuca_distance(4)
        a.merge(b)
        assert a.messages == 2
        assert a.router_bytes == 72 * 2 + 72 * 3
        assert a.nuca_distance_count == 1
