"""NucaPolicy base-class behaviour and FlushAction semantics."""

from repro.nuca.base import BYPASS, FlushAction, NucaPolicy


class Fixed(NucaPolicy):
    """Test double resolving every block to a fixed bank."""

    name = "fixed"

    def __init__(self, bank):
        super().__init__()
        self._bank = bank

    def bank_for(self, core, block, write):
        return self._count(core, self._bank)


class TestPolicyStats:
    def test_resolution_counting(self):
        p = Fixed(3)
        for _ in range(5):
            p.bank_for(0, 0, False)
        assert p.stats.resolutions == 5
        assert p.stats.bypasses == 0
        assert p.stats.local_bank_hits == 0

    def test_local_hits_counted(self):
        p = Fixed(3)
        p.bank_for(3, 0, False)
        assert p.stats.local_bank_hits == 1

    def test_bypass_counted(self):
        p = Fixed(BYPASS)
        p.bank_for(0, 0, False)
        assert p.stats.bypasses == 1

    def test_default_hooks(self):
        p = Fixed(0)
        assert p.pre_access(0, 0, False) is None
        assert p.classify_pages(0, [1], [True]) == []
        assert p.lookup_cycles == 0


class TestFlushAction:
    def test_defaults(self):
        a = FlushAction((1, 2, 3))
        assert a.l1_cores == ()
        assert a.llc_banks == ()
        assert a.reason == ""

    def test_immutable(self):
        import pytest

        a = FlushAction((1,), l1_cores=(0,))
        with pytest.raises(AttributeError):
            a.blocks = (9,)
