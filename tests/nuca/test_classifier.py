"""OS first-touch page classification (paper Section II-C)."""

from repro.nuca.classifier import PageClass, PageClassifier


class TestFirstTouch:
    def test_first_access_private(self):
        c = PageClassifier()
        assert c.access(3, 10, False) is None
        assert c.classify(10) is PageClass.PRIVATE
        assert c.owner(10) == 3
        assert c.stats.first_touches == 1

    def test_untouched_is_none(self):
        assert PageClassifier().classify(5) is None

    def test_owner_repeat_access_no_transition(self):
        c = PageClassifier()
        c.access(0, 10, False)
        assert c.access(0, 10, True) is None
        assert c.classify(10) is PageClass.PRIVATE


class TestPrivateToShared:
    def test_clean_page_becomes_shared_ro(self):
        c = PageClassifier()
        c.access(0, 10, False)
        t = c.access(1, 10, False)
        assert t is not None
        assert t.old is PageClass.PRIVATE
        assert t.new is PageClass.SHARED_RO
        assert t.flush_core == 0
        assert c.stats.private_to_shared_ro == 1
        assert c.stats.tlb_shootdowns == 1

    def test_dirty_page_becomes_shared(self):
        c = PageClassifier()
        c.access(0, 10, True)  # dirty
        t = c.access(1, 10, False)
        assert t.new is PageClass.SHARED
        assert c.stats.private_to_shared == 1

    def test_write_by_second_core_becomes_shared(self):
        c = PageClassifier()
        c.access(0, 10, False)
        t = c.access(1, 10, True)
        assert t.new is PageClass.SHARED

    def test_owner_lost_after_transition(self):
        c = PageClassifier()
        c.access(0, 10, False)
        c.access(1, 10, False)
        assert c.owner(10) is None


class TestSharedRO:
    def test_reads_keep_ro(self):
        c = PageClassifier()
        c.access(0, 10, False)
        c.access(1, 10, False)
        assert c.access(2, 10, False) is None
        assert c.classify(10) is PageClass.SHARED_RO

    def test_write_demotes_to_shared(self):
        c = PageClassifier()
        c.access(0, 10, False)
        c.access(1, 10, False)
        t = c.access(2, 10, True)
        assert t.old is PageClass.SHARED_RO
        assert t.new is PageClass.SHARED
        assert t.flush_core is None  # flush everywhere
        assert c.stats.ro_to_shared == 1


class TestSharedTerminal:
    def test_shared_never_returns(self):
        """The paper's key limitation: once shared, never private again."""
        c = PageClassifier()
        c.access(0, 10, True)
        c.access(1, 10, True)
        assert c.classify(10) is PageClass.SHARED
        # Even if only core 2 uses it from now on...
        for _ in range(10):
            assert c.access(2, 10, True) is None
        assert c.classify(10) is PageClass.SHARED


class TestCensus:
    def test_counts_by_class(self):
        c = PageClassifier()
        c.access(0, 1, False)  # private
        c.access(0, 2, False)
        c.access(1, 2, False)  # shared RO
        c.access(0, 3, True)
        c.access(1, 3, False)  # shared
        census = c.census()
        assert census[PageClass.PRIVATE] == 1
        assert census[PageClass.SHARED_RO] == 1
        assert census[PageClass.SHARED] == 1
        assert c.pages_tracked == 3
