"""Hardware D-NUCA: gradual migration, location table, machine wiring."""

import numpy as np
import pytest

from repro.noc.topology import Mesh
from repro.nuca.dnuca import DNuca
from repro.sim.machine import build_machine

from tests.conftest import tiny_config

MESH = Mesh(4, 4)


def make_dnuca(threshold=2):
    return DNuca(MESH, migration_threshold=threshold)


class TestPlacement:
    def test_home_is_interleaved(self):
        d = make_dnuca()
        for blk in range(32):
            assert d.bank_for(0, blk, False) == blk % 16

    def test_validation(self):
        with pytest.raises(ValueError):
            DNuca(MESH, migration_threshold=0)
        with pytest.raises(ValueError):
            DNuca(Mesh(3, 3, 3, 3))


class TestMigration:
    def test_migrates_after_threshold(self):
        d = make_dnuca(threshold=2)
        bank = d.bank_for(0, 15, False)  # home = 15
        assert d.post_access(0, 15, bank) is None  # first access: streak 1
        mig = d.post_access(0, 15, bank)  # second: migrate
        assert mig is not None
        assert mig.src_bank == 15
        assert MESH.hops(mig.dst_bank, 0) == MESH.hops(15, 0) - 1
        assert d.bank_for(0, 15, False) == mig.dst_bank

    def test_streak_broken_by_other_core(self):
        d = make_dnuca(threshold=2)
        d.post_access(0, 15, 15)
        assert d.post_access(5, 15, 15) is None  # new streak for core 5
        assert d.post_access(5, 15, 15) is not None

    def test_no_migration_at_local_bank(self):
        d = make_dnuca(threshold=1)
        assert d.post_access(3, 99, 3) is None

    def test_converges_to_local_bank(self):
        d = make_dnuca(threshold=1)
        block, core = 15, 0
        for _ in range(10):
            bank = d.bank_for(core, block, False)
            d.post_access(core, block, bank)
        assert d.bank_for(core, block, False) == core
        assert d.migrations == MESH.hops(15, 0)

    def test_eviction_forgets_location(self):
        d = make_dnuca(threshold=1)
        d.post_access(0, 15, 15)
        assert d.blocks_relocated == 1
        d.evicted(15)
        assert d.bank_for(0, 15, False) == 15  # back home


class TestMachineIntegration:
    def test_machine_performs_migrations(self):
        m = build_machine(tiny_config(), "dnuca", fragmentation=0.0)
        blocks = np.array([15], dtype=np.int64)
        writes = np.zeros(1, dtype=bool)
        for _ in range(16):
            m.l1s[0].invalidate(15)  # force repeated LLC accesses
            m._run_blocks(0, blocks, writes)
        assert m.policy.migrations > 0
        # The block physically moved: resident in the new bank, not home.
        current = m.policy.bank_for(0, 15, False)
        assert current != 15
        assert m.llc.banks[current].contains(15)
        assert not m.llc.banks[15].contains(15)

    def test_migration_reduces_distance(self):
        m = build_machine(tiny_config(), "dnuca", fragmentation=0.0)
        blocks = np.array([15], dtype=np.int64)
        writes = np.zeros(1, dtype=bool)
        first = m._run_blocks(0, blocks, writes)
        for _ in range(20):
            m.l1s[0].invalidate(15)
            m._run_blocks(0, blocks, writes)
        m.l1s[0].invalidate(15)
        last = m._run_blocks(0, blocks, writes)
        assert last < first  # converged next to the requester

    def test_search_latency_charged(self):
        td = build_machine(tiny_config(), "snuca", fragmentation=0.0)
        dn = build_machine(tiny_config(), "dnuca", fragmentation=0.0)
        blocks = np.array([7], dtype=np.int64)
        writes = np.zeros(1, dtype=bool)
        c_s = td._run_blocks(0, blocks, writes)
        c_d = dn._run_blocks(0, blocks, writes)
        assert c_d == c_s + dn.policy.lookup_cycles
