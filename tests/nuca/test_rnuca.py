"""Augmented R-NUCA placement and reclassification flushes."""

import pytest

from repro.mem.address import AddressMap
from repro.noc.topology import Mesh
from repro.nuca.rnuca import RNuca
from repro.nuca.rotational import rotational_bank

AMAP = AddressMap(64, 4096)
MESH = Mesh(4, 4)
BLOCKS_PER_PAGE = 64


def make_rnuca():
    return RNuca(MESH, AMAP)


def page_block(page, i=0):
    return page * BLOCKS_PER_PAGE + i


class TestPlacement:
    def test_private_page_maps_to_owner_bank(self):
        r = make_rnuca()
        blk = page_block(1)
        r.pre_access(5, blk, False)
        assert r.bank_for(5, blk, False) == 5
        # Another core reading a private page still goes to the owner's
        # bank until the classifier reclassifies it.
        assert r.classifier.owner(1) == 5

    def test_shared_page_interleaves(self):
        r = make_rnuca()
        blk = page_block(1)
        r.pre_access(0, blk, True)
        r.pre_access(1, blk, True)
        for i in range(8):
            b = page_block(1, i)
            assert r.bank_for(1, b, False) == b % 16

    def test_shared_ro_page_replicates_in_local_cluster(self):
        r = make_rnuca()
        blk = page_block(1)
        r.pre_access(0, blk, False)
        r.pre_access(15, blk, False)  # clean -> shared RO
        for core in (0, 15):
            bank = r.bank_for(core, blk, False)
            assert bank in MESH.local_cluster_tiles(core)
            assert bank == rotational_bank(MESH, core, blk)

    def test_untracked_falls_back_to_interleave(self):
        r = make_rnuca()
        assert r.bank_for(0, 123, False) == 123 % 16


class TestReclassificationFlushes:
    def test_private_to_shared_flush_targets_owner(self):
        r = make_rnuca()
        blk = page_block(2)
        r.pre_access(3, blk, True)
        action = r.pre_access(7, blk, False)
        assert action is not None
        assert action.l1_cores == (3,)
        assert action.llc_banks == (3,)
        assert len(action.blocks) == BLOCKS_PER_PAGE
        assert blk in action.blocks

    def test_ro_to_shared_flush_targets_everyone(self):
        r = make_rnuca()
        blk = page_block(2)
        r.pre_access(0, blk, False)
        r.pre_access(1, blk, False)
        action = r.pre_access(2, blk, True)
        assert action.l1_cores == tuple(range(16))
        assert action.llc_banks == tuple(range(16))

    def test_no_action_within_owner(self):
        r = make_rnuca()
        blk = page_block(2)
        assert r.pre_access(0, blk, False) is None
        assert r.pre_access(0, blk, True) is None


class TestBatchClassification:
    def test_classify_pages_reads_before_writes(self):
        r = make_rnuca()
        # Core 0 reads+writes page 1 in one task: first touch read ->
        # private; the write just sets dirty.  No flush.
        actions = r.classify_pages(0, [1], [True])
        assert actions == []
        # A second core reading it now triggers private->shared.
        actions = r.classify_pages(1, [1], [False])
        assert len(actions) == 1
        assert actions[0].reason == "private->shared"

    def test_classify_pages_multiple(self):
        r = make_rnuca()
        r.classify_pages(0, [1, 2, 3], [False, False, True])
        actions = r.classify_pages(1, [1, 2, 3], [False, True, False])
        # page 1: private->shared-RO; page 2: private->shared-RO on the
        # read, then RO->shared on the write; page 3: private->shared.
        assert len(actions) == 4
        reasons = [a.reason for a in actions]
        assert reasons.count("read_only->shared") == 1


class TestValidation:
    def test_power_of_two_tiles_required(self):
        with pytest.raises(ValueError):
            RNuca(Mesh(3, 3, 3, 3), AMAP)
