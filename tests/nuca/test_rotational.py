"""Rotational interleaving of replicas."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.topology import Mesh
from repro.nuca.rotational import cluster_bank_for_block, rotational_bank

MESH = Mesh(4, 4)


class TestClusterBank:
    def test_rotation(self):
        tiles = (0, 1, 4, 5)
        assert cluster_bank_for_block(tiles, 0) == 0
        assert cluster_bank_for_block(tiles, 1) == 1
        assert cluster_bank_for_block(tiles, 2) == 4
        assert cluster_bank_for_block(tiles, 3) == 5
        assert cluster_bank_for_block(tiles, 4) == 0

    def test_empty_cluster(self):
        with pytest.raises(ValueError):
            cluster_bank_for_block((), 0)


@given(st.integers(0, 15), st.integers(0, 1 << 30))
def test_replica_stays_in_local_cluster(core, block):
    bank = rotational_bank(MESH, core, block)
    assert bank in MESH.local_cluster_tiles(core)


@given(st.integers(0, 1 << 30))
def test_same_cluster_cores_agree(block):
    """All cores of a cluster resolve a block to the same replica bank —
    required for them to actually share the replica."""
    for cluster in range(MESH.num_clusters):
        tiles = MESH.cluster_tiles(cluster)
        banks = {rotational_bank(MESH, c, block) for c in tiles}
        assert len(banks) == 1


def test_consecutive_blocks_cover_cluster():
    banks = {rotational_bank(MESH, 0, b) for b in range(4)}
    assert banks == set(MESH.local_cluster_tiles(0))
