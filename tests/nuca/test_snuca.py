"""Static NUCA interleaving."""

import pytest

from repro.nuca.base import BYPASS
from repro.nuca.snuca import SNuca, interleave_bank


class TestInterleaving:
    def test_modulo(self):
        assert interleave_bank(0, 16) == 0
        assert interleave_bank(17, 16) == 1
        assert interleave_bank(31, 16) == 15

    def test_policy_matches_function(self):
        s = SNuca(16)
        for blk in range(64):
            assert s.bank_for(0, blk, False) == interleave_bank(blk, 16)

    def test_core_independent(self):
        s = SNuca(16)
        assert s.bank_for(0, 5, False) == s.bank_for(15, 5, True)

    def test_uniform_distribution(self):
        s = SNuca(4)
        counts = [0] * 4
        for blk in range(400):
            counts[s.bank_for(0, blk, False)] += 1
        assert counts == [100] * 4

    def test_never_bypasses(self):
        s = SNuca(16)
        for blk in range(100):
            assert s.bank_for(3, blk, True) != BYPASS
        assert s.stats.bypasses == 0

    def test_stats_counting(self):
        s = SNuca(16)
        s.bank_for(0, 0, False)  # local for core 0
        s.bank_for(0, 1, False)
        assert s.stats.resolutions == 2
        assert s.stats.local_bank_hits == 1


class TestValidation:
    @pytest.mark.parametrize("banks", [0, -4, 12])
    def test_bad_bank_count(self, banks):
        with pytest.raises(ValueError):
            SNuca(banks)

    def test_classify_pages_noop(self):
        assert SNuca(16).classify_pages(0, [1, 2], [False, True]) == []

    def test_pre_access_noop(self):
        assert SNuca(16).pre_access(0, 5, True) is None
