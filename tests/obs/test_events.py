"""Event records and the ring-buffered trace sink."""

import pytest

from repro.obs.events import EventKind, EventTrace, TraceEvent, TraceSink


def ev(i: int) -> TraceEvent:
    return TraceEvent(EventKind.TASK_START, ts=i, core=i % 4, name=f"t{i}")


class TestTraceEvent:
    def test_to_dict_minimal(self):
        d = ev(3).to_dict()
        assert d == {"kind": "task_start", "ts": 3, "core": 3, "name": "t3"}

    def test_to_dict_full(self):
        e = TraceEvent(
            EventKind.TASK_START, 10, 2, "work", dur=5, args={"tid": 7}
        )
        d = e.to_dict()
        assert d["dur"] == 5 and d["args"] == {"tid": 7}

    def test_kind_values_are_wire_names(self):
        assert EventKind.NUCA_REMAP.value == "nuca_remap"
        assert EventKind("dram_retry") is EventKind.DRAM_RETRY


class TestEventTrace:
    def test_is_a_trace_sink(self):
        assert isinstance(EventTrace(4), TraceSink)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            EventTrace(0)

    def test_records_in_order_below_capacity(self):
        trace = EventTrace(8)
        for i in range(5):
            trace.emit(ev(i))
        assert [e.ts for e in trace.events()] == [0, 1, 2, 3, 4]
        assert len(trace) == 5
        assert trace.total == 5
        assert trace.dropped == 0

    def test_wraparound_keeps_newest_oldest_first(self):
        trace = EventTrace(4)
        for i in range(11):
            trace.emit(ev(i))
        assert [e.ts for e in trace.events()] == [7, 8, 9, 10]
        assert len(trace) == 4
        assert trace.total == 11
        assert trace.dropped == 7

    def test_wraparound_exactly_at_capacity(self):
        trace = EventTrace(3)
        for i in range(3):
            trace.emit(ev(i))
        assert trace.dropped == 0
        trace.emit(ev(3))
        assert [e.ts for e in trace.events()] == [1, 2, 3]
        assert trace.dropped == 1

    def test_iteration_matches_events(self):
        trace = EventTrace(4)
        for i in range(6):
            trace.emit(ev(i))
        assert [e.ts for e in trace] == [e.ts for e in trace.events()]

    def test_clear_resets_everything(self):
        trace = EventTrace(2)
        for i in range(5):
            trace.emit(ev(i))
        trace.clear()
        assert trace.events() == [] and trace.total == 0 and trace.dropped == 0
        trace.emit(ev(9))
        assert [e.ts for e in trace.events()] == [9]
