"""Chrome-trace and JSONL exporters."""

import json

from repro.obs.events import EventKind, TraceEvent
from repro.obs.export import (
    chrome_trace_dict,
    events_to_jsonl,
    write_chrome_trace,
    write_event_log,
)
from repro.obs.timeline import IntervalSample, IntervalTimeline

#: the minimal shape every Chrome trace event must satisfy, per phase type.
REQUIRED_BY_PHASE = {
    "M": {"pid", "tid", "name", "args"},
    "X": {"pid", "tid", "ts", "dur", "name"},
    "B": {"pid", "tid", "ts", "name"},
    "E": {"pid", "tid", "ts", "name"},
    "i": {"pid", "tid", "ts", "name", "s"},
    "C": {"pid", "tid", "ts", "name", "args"},
}


def task(ts, core, name="work", dur=10, tid=0):
    return TraceEvent(EventKind.TASK_START, ts, core, name, dur, {"tid": tid})


def sample_events():
    return [
        TraceEvent(EventKind.PHASE_BEGIN, 0, -1, "phase 0", 0, {"tasks": 2}),
        task(0, 0, tid=1),
        task(5, 1, tid=2),
        TraceEvent(EventKind.TASK_END, 10, 0, "work"),
        TraceEvent(EventKind.FLUSH_BEGIN, 12, -1, "flush llc", 0,
                   {"tiles": [0], "blocks": 4}),
        TraceEvent(EventKind.PHASE_END, 20, -1, "phase 0"),
    ]


def timeline_with_samples():
    tl = IntervalTimeline(num_cores=2, num_banks=2, sample_every=1)
    tl.samples.append(
        IntervalSample(
            tasks_completed=1,
            cycles=10,
            bank_accesses=[3, 4],
            bank_hits=[1, 2],
            bank_occupancy=[5, 6],
            router_bytes=0,
            flit_hops=0,
            messages=0,
        )
    )
    return tl


class TestChromeTrace:
    def test_validates_against_minimal_schema(self):
        doc = chrome_trace_dict(sample_events(), timeline_with_samples())
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        for event in doc["traceEvents"]:
            assert event["ph"] in REQUIRED_BY_PHASE
            missing = REQUIRED_BY_PHASE[event["ph"]] - set(event)
            assert not missing, f"{event['ph']} event missing {missing}"
        json.dumps(doc)  # must be JSON-serialisable as-is

    def test_task_events_become_complete_spans_per_core(self):
        doc = chrome_trace_dict(sample_events())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [(s["tid"], s["ts"], s["dur"]) for s in spans] == [
            (0, 0, 10), (1, 5, 10),
        ]
        # TASK_END is folded into the complete event, never emitted alone.
        assert all(e["ph"] != "E" or e["name"].startswith("phase")
                   for e in doc["traceEvents"])

    def test_per_core_thread_metadata(self):
        doc = chrome_trace_dict(sample_events())
        names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names[(0, 0)] == "core 0" and names[(0, 1)] == "core 1"
        assert "phases" in names.values() and "runtime" in names.values()

    def test_bank_counters_from_timeline(self):
        doc = chrome_trace_dict([], timeline_with_samples())
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        assert {c["name"] for c in counters} == {
            "bank0 occupancy", "bank0 accesses",
            "bank1 occupancy", "bank1 accesses",
        }
        occ1 = next(c for c in counters if c["name"] == "bank1 occupancy")
        assert occ1["args"] == {"blocks": 6} and occ1["pid"] == 1

    def test_body_sorted_by_timestamp(self):
        doc = chrome_trace_dict(sample_events(), timeline_with_samples())
        stamped = [e["ts"] for e in doc["traceEvents"] if "ts" in e]
        assert stamped == sorted(stamped)

    def test_meta_lands_in_other_data(self):
        doc = chrome_trace_dict([], meta={"workload": "lu"})
        assert doc["otherData"]["workload"] == "lu"
        assert "time_unit" in doc["otherData"]

    def test_write_is_loadable(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, sample_events(), timeline_with_samples(),
                           meta={"workload": "lu"})
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestJsonl:
    def test_header_then_one_event_per_line(self):
        text = events_to_jsonl(sample_events(), meta={"policy": "tdnuca"})
        lines = text.strip().split("\n")
        assert json.loads(lines[0]) == {"trace_meta": {"policy": "tdnuca"}}
        assert len(lines) == 1 + len(sample_events())
        assert json.loads(lines[1])["kind"] == "phase_begin"

    def test_write_event_log(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_event_log(path, sample_events())
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 1 + len(sample_events())
        for line in lines:
            json.loads(line)
