"""CallbackSink: the sampled, dict-typed event feed behind the service."""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.config import scaled_config
from repro.obs.events import EventKind, TraceEvent
from repro.obs.observer import Observer
from repro.obs.stream import CallbackSink, event_to_dict

CFG = scaled_config(1 / 2048)


class TestEventToDict:
    def test_fields_are_json_primitives(self):
        ev = TraceEvent(EventKind.TASK_END, 123, core=2, name="t", dur=9)
        d = event_to_dict(ev, tasks_done=40)
        assert d["kind"] == "task_end"
        assert d["ts"] == 123
        assert d["tasks_done"] == 40


class TestCallbackSink:
    def _run(self, sink):
        session = Session(CFG)
        session.run("md5", "tdnuca",
                     trace=Observer(sink=sink, timeline=False))
        return sink

    def test_samples_task_ends_and_forwards_the_rest(self):
        got = []
        sink = self._run(CallbackSink(got.append, task_sample_every=64))
        kinds = {d["kind"] for d in got}
        assert "task_start" not in kinds  # always dropped: pure noise
        task_ends = [d for d in got if d["kind"] == "task_end"]
        assert 0 < len(task_ends) < sink.tasks_seen
        assert all(d["tasks_done"] % 64 == 0 for d in task_ends)
        assert "phase_begin" in kinds  # non-task events pass through

    def test_sample_every_zero_silences_task_events(self):
        got = []
        self._run(CallbackSink(got.append, task_sample_every=0))
        assert not any(d["kind"] == "task_end" for d in got)
        assert got  # but other kinds still flow

    def test_traced_stats_equal_untraced(self):
        plain = Session(CFG).run("md5", "tdnuca").stats_dict()
        sink = CallbackSink(lambda d: None)
        traced = Session(CFG).run(
            "md5", "tdnuca", trace=Observer(sink=sink, timeline=False)
        ).stats_dict()
        assert plain == traced

    def test_negative_sampling_rejected(self):
        with pytest.raises(ValueError):
            CallbackSink(lambda d: None, task_sample_every=-1)
