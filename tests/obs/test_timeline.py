"""Interval timeline: derived views and link-load attribution."""

import pytest

from repro.noc.topology import Mesh
from repro.obs.timeline import IntervalSample, IntervalTimeline


def sample(tasks, acc, hits, occ=None, **kw):
    n = len(acc)
    return IntervalSample(
        tasks_completed=tasks,
        cycles=tasks * 100,
        bank_accesses=list(acc),
        bank_hits=list(hits),
        bank_occupancy=list(occ) if occ is not None else [0] * n,
        router_bytes=kw.get("router_bytes", 0),
        flit_hops=0,
        messages=0,
    )


def make_timeline(num_cores=4, num_banks=4, sample_every=2):
    return IntervalTimeline(
        num_cores=num_cores,
        num_banks=num_banks,
        sample_every=sample_every,
        bank_capacity=64,
        bytes_per_request=80,
    )


class TestValidation:
    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            make_timeline(sample_every=0)

    def test_attribution_matrix_shape(self):
        tl = make_timeline(num_cores=3, num_banks=5)
        assert len(tl.core_bank_requests) == 3
        assert all(len(row) == 5 for row in tl.core_bank_requests)


class TestDerivedViews:
    def test_bank_access_deltas(self):
        tl = make_timeline()
        tl.samples.append(sample(0, [0, 0, 0, 0], [0, 0, 0, 0]))
        tl.samples.append(sample(2, [10, 4, 0, 2], [5, 4, 0, 0]))
        tl.samples.append(sample(4, [15, 8, 1, 2], [9, 6, 1, 0]))
        assert tl.bank_access_deltas() == [[10, 4, 0, 2], [5, 4, 1, 0]]

    def test_interval_hit_rates(self):
        tl = make_timeline()
        tl.samples.append(sample(0, [0, 0, 0, 0], [0, 0, 0, 0]))
        tl.samples.append(sample(2, [8, 8, 0, 0], [4, 4, 0, 0]))
        tl.samples.append(sample(4, [8, 8, 0, 0], [4, 4, 0, 0]))  # idle
        assert tl.interval_hit_rates() == [0.5, 0.0]

    def test_clear_drops_samples_and_attribution(self):
        tl = make_timeline()
        tl.samples.append(sample(0, [0] * 4, [0] * 4))
        tl.core_bank_requests[1][2] = 9
        tl.clear()
        assert tl.num_samples == 0
        assert tl.core_bank_requests[1][2] == 0

    def test_to_dict_round_trips_through_json(self):
        import json

        tl = make_timeline()
        tl.samples.append(sample(0, [0] * 4, [0] * 4, occ=[1, 2, 3, 4]))
        tl.core_bank_requests[0][1] = 3
        d = json.loads(json.dumps(tl.to_dict()))
        assert d["sample_every"] == 2
        assert d["samples"][0]["bank_occupancy"] == [1, 2, 3, 4]
        assert d["core_bank_requests"][0][1] == 3


class TestLinkLoads:
    def test_xy_routes_spread_bytes_over_links(self):
        # 4x4 mesh; core 0 (tile 0) -> bank 2 (tile 2) goes 0->1->2.
        mesh = Mesh(4, 4)
        tl = IntervalTimeline(
            num_cores=16, num_banks=16, sample_every=1, bytes_per_request=10
        )
        tl.core_bank_requests[0][2] = 5
        loads = tl.link_loads(mesh)
        assert loads == {(0, 1): 50, (1, 2): 50}

    def test_local_access_crosses_no_links(self):
        mesh = Mesh(4, 4)
        tl = IntervalTimeline(
            num_cores=16, num_banks=16, sample_every=1, bytes_per_request=10
        )
        tl.core_bank_requests[5][5] = 100
        assert tl.link_loads(mesh) == {}

    def test_opposing_flows_share_the_link_key(self):
        mesh = Mesh(4, 4)
        tl = IntervalTimeline(
            num_cores=16, num_banks=16, sample_every=1, bytes_per_request=10
        )
        tl.core_bank_requests[0][1] = 1
        tl.core_bank_requests[1][0] = 2
        assert tl.link_loads(mesh) == {(0, 1): 30}
