"""End-to-end observability: traced runs tell the truth and change nothing."""

import pytest

from repro.api import Session
from repro.config import scaled_config
from repro.experiments.serialize import result_to_dict
from repro.obs.events import EventKind, EventTrace
from repro.obs.observer import Observer

CFG = scaled_config(1 / 1024)


@pytest.fixture(scope="module")
def traced():
    return Session(CFG).run("kmeans", "tdnuca", trace=True, sample_every=32)


class TestReadOnly:
    def test_traced_stats_identical_to_untraced(self, traced):
        untraced = Session(CFG).run("kmeans", "tdnuca")
        assert result_to_dict(untraced.experiment) == result_to_dict(
            traced.experiment
        )

    def test_untraced_run_has_no_observability(self):
        r = Session(CFG).run("kmeans", "snuca")
        assert not r.traced and r.events == [] and r.timeline is None
        with pytest.raises(ValueError, match="not traced"):
            r.write_chrome_trace("/tmp/never-written.json")


class TestEventStream:
    def test_events_cover_the_expected_kinds(self, traced):
        kinds = {e.kind for e in traced.events}
        assert EventKind.TASK_START in kinds
        assert EventKind.TASK_END in kinds
        assert EventKind.PHASE_BEGIN in kinds and EventKind.PHASE_END in kinds
        assert EventKind.RRT_INSTALL in kinds  # tdnuca registers dependencies

    def test_task_spans_are_consistent(self, traced):
        starts = [e for e in traced.events if e.kind is EventKind.TASK_START]
        assert starts, "no task events recorded"
        for e in starts[:50]:
            assert e.dur > 0 and e.core >= 0 and e.args["tid"] >= 0

    def test_phase_brackets_nest(self, traced):
        depth = 0
        for e in traced.events:
            if e.kind is EventKind.PHASE_BEGIN:
                depth += 1
                assert depth == 1  # phases never overlap
            elif e.kind is EventKind.PHASE_END:
                depth -= 1
        assert depth == 0

    def test_warmup_events_discarded(self, traced):
        # kmeans has warmup phases; the trace restarts with the measured
        # window, so the first phase event is phase index 0 again and no
        # timestamp precedes the fresh executor clock.
        first = traced.events[0]
        assert first.ts >= 0
        sink = traced.observer.sink
        assert isinstance(sink, EventTrace)
        task_events = sum(
            1 for e in traced.events if e.kind is EventKind.TASK_START
        )
        assert task_events <= traced.execution.tasks_executed


class TestTimelineSampling:
    def test_deterministic_under_fixed_seed(self):
        a = Session(CFG, seed=3).run("jacobi", "tdnuca", trace=True,
                                     sample_every=16)
        b = Session(CFG, seed=3).run("jacobi", "tdnuca", trace=True,
                                     sample_every=16)
        assert a.timeline.to_dict() == b.timeline.to_dict()

    def test_samples_are_monotonic(self, traced):
        tl = traced.timeline
        assert tl.num_samples >= 2
        tasks = [s.tasks_completed for s in tl.samples]
        assert tasks == sorted(tasks)
        for prev, cur in zip(tl.samples, tl.samples[1:]):
            for p, c in zip(prev.bank_accesses, cur.bank_accesses):
                assert c >= p  # cumulative counters never go backwards

    def test_attribution_matches_bank_totals(self, traced):
        # Every LLC access attributed to some core must appear in the
        # sampled cumulative counters (attribution is a partition of the
        # post-warmup access stream, modulo the tail after the last task).
        tl = traced.timeline
        attributed = sum(sum(row) for row in tl.core_bank_requests)
        llc = traced.machine.llc_accesses
        assert attributed == llc

    def test_heatmaps_render(self, traced):
        bank_map = traced.bank_heatmap(max_rows=6)
        assert "bank" in bank_map and "hit%" in bank_map
        link_map = traced.link_heatmap()
        assert "15" in link_map  # the last tile of the 4x4 floorplan


class TestCustomObserver:
    def test_observer_instance_is_honoured(self):
        obs = Observer(sample_every=8, capacity=128)
        r = Session(CFG).run("md5", "tdnuca", trace=obs)
        assert r.observer is obs
        assert obs.sink.capacity == 128

    def test_double_attach_rejected(self):
        obs = Observer()
        Session(CFG).run("md5", "snuca", trace=obs)
        with pytest.raises(RuntimeError, match="already attached"):
            Session(CFG).run("md5", "snuca", trace=obs)


class TestFaultEvents:
    def test_bank_death_emits_fault_and_remap(self):
        # md5 has no warmup phases, so the fault's events cannot be
        # discarded with a warmup window.
        r = Session(CFG).run(
            "md5", "tdnuca", trace=True, faults="bank:5@task=10"
        )
        kinds = [e.kind for e in r.events]
        assert EventKind.FAULT_BANK in kinds
        assert EventKind.NUCA_REMAP in kinds
        fault = next(e for e in r.events if e.kind is EventKind.FAULT_BANK)
        assert fault.args["bank"] == 5

    def test_envelope_carries_trace_summary(self):
        r = Session(CFG).run("md5", "tdnuca", trace=True)
        d = r.to_dict()
        assert d["trace"]["events_recorded"] == r.observer.sink.total
        assert d["trace"]["by_kind"]["task_start"] > 0
        assert d["timeline"]["samples"]
