"""Discrete-event executor: ordering, barriers, creation overlap."""

import pytest

from repro.deps import DepMode
from repro.mem.region import Region
from repro.runtime.executor import Executor
from repro.runtime.extensions import RuntimeExtension
from repro.runtime.task import Dependency, Program, Task


class StubMachine:
    """Fixed-cost machine recording execution order."""

    def __init__(self, num_cores=4, cycles=100):
        self._num_cores = num_cores
        self.cycles = cycles
        self.log: list[tuple[str, int]] = []

    @property
    def num_cores(self):
        return self._num_cores

    def run_task_trace(self, core, task):
        self.log.append((task.name, core))
        return self.cycles


def region(i):
    return Region(0x1000 * (i + 1), 0x100)


def task(name, *deps):
    return Task(name, tuple(Dependency(r, m) for r, m in deps))


def make_program(tasks, phases=None):
    p = Program("p")
    if phases is None:
        ph = p.new_phase()
        ph.extend(tasks)
    else:
        for group in phases:
            ph = p.new_phase()
            ph.extend(group)
    return p


class TestExecution:
    def test_all_tasks_run_exactly_once(self):
        m = StubMachine()
        tasks = [task(f"t{i}", (region(i), DepMode.OUT)) for i in range(10)]
        stats = Executor(m, jitter=0).run(make_program(tasks))
        assert stats.tasks_executed == 10
        assert sorted(n for n, _ in m.log) == sorted(t.name for t in tasks)

    def test_dependencies_respected(self):
        m = StubMachine()
        producer = task("prod", (region(0), DepMode.OUT))
        consumer = task("cons", (region(0), DepMode.IN))
        Executor(m, jitter=0).run(make_program([consumer, producer][::-1]))
        names = [n for n, _ in m.log]
        assert names.index("prod") < names.index("cons")

    def test_phases_are_barriers(self):
        m = StubMachine()
        p1 = [task(f"a{i}", (region(i), DepMode.OUT)) for i in range(4)]
        p2 = [task(f"b{i}", (region(i), DepMode.OUT)) for i in range(4)]
        Executor(m, jitter=0).run(make_program(None, [p1, p2]))
        names = [n for n, _ in m.log]
        assert max(names.index(f"a{i}") for i in range(4)) < min(
            names.index(f"b{i}") for i in range(4)
        )

    def test_independent_tasks_parallelize(self):
        m = StubMachine(num_cores=4, cycles=100)
        tasks = [task(f"t{i}", (region(i), DepMode.OUT)) for i in range(6)]
        stats = Executor(m, jitter=0).run(make_program(tasks))
        # 6 tasks at 100 cycles on 3+ workers, plus 360 creation cycles on
        # core 0: far below the serial 360 + 600.
        assert stats.makespan_cycles < 700

    def test_serial_chain_is_serial(self):
        m = StubMachine(cycles=100)
        tasks = [task(f"t{i}", (region(0), DepMode.INOUT)) for i in range(5)]
        stats = Executor(m, jitter=0).run(make_program(tasks))
        assert stats.makespan_cycles >= 500

    def test_deterministic(self):
        def run():
            m = StubMachine()
            tasks = [
                Task(f"t{i}", (Dependency(region(i % 3), DepMode.INOUT),))
                for i in range(12)
            ]
            s = Executor(m, jitter=0.05, jitter_seed=3).run(make_program(tasks))
            return s.makespan_cycles, m.log

        assert run() == run()

    def test_empty_program(self):
        stats = Executor(StubMachine()).run(Program("empty"))
        assert stats.makespan_cycles == 0
        assert stats.tasks_executed == 0


class TestCreationOverlap:
    def test_creation_charged_to_core0(self):
        m = StubMachine()
        tasks = [task(f"t{i}", (region(i), DepMode.OUT)) for i in range(8)]
        stats = Executor(m, jitter=0).run(make_program(tasks))
        assert stats.creation_cycles == 8 * Executor.CREATE_CYCLES_PER_TASK
        assert stats.busy_cycles[0] >= stats.creation_cycles

    def test_makespan_at_least_creation(self):
        m = StubMachine(cycles=1)
        tasks = [task(f"t{i}", (region(i), DepMode.OUT)) for i in range(20)]
        stats = Executor(m, jitter=0).run(make_program(tasks))
        assert stats.makespan_cycles >= 20 * Executor.CREATE_CYCLES_PER_TASK


class TestJitter:
    def test_jitter_bounded(self):
        ex = Executor(StubMachine(), jitter=0.1, jitter_seed=0)
        for i in range(100):
            f = ex._jitter_factor(f"task{i}")
            assert 0.9 <= f <= 1.1

    def test_zero_jitter_identity(self):
        ex = Executor(StubMachine(), jitter=0)
        assert ex._jitter_factor("anything") == 1.0

    def test_bad_jitter(self):
        with pytest.raises(ValueError):
            Executor(StubMachine(), jitter=1.5)


class TestExtensionHooks:
    def test_hooks_called_per_task(self):
        calls = []

        class Ext(RuntimeExtension):
            def on_task_created(self, task):
                calls.append(("created", task.name))
                return 5

            def on_task_start(self, task, core):
                calls.append(("start", task.name))
                return 7

            def on_task_end(self, task, core):
                calls.append(("end", task.name))
                return 3

        m = StubMachine()
        t = task("t", (region(0), DepMode.OUT))
        stats = Executor(m, extension=Ext(), jitter=0).run(make_program([t]))
        assert ("created", "t") in calls
        assert ("start", "t") in calls
        assert ("end", "t") in calls
        assert stats.extension_cycles == 10  # start + end

    def test_utilization_bounded(self):
        m = StubMachine()
        tasks = [task(f"t{i}", (region(i), DepMode.OUT)) for i in range(10)]
        stats = Executor(m, jitter=0).run(make_program(tasks))
        assert 0 < stats.avg_utilization <= 1
