"""TD-NUCA runtime extension: the Section III-C2 operational model."""

import pytest

from repro.config import LatencyConfig
from repro.core.isa import TdNucaISA
from repro.core.policy import PlacementKind
from repro.core.rrt import RRT
from repro.deps import DepMode
from repro.mem.address import AddressMap
from repro.mem.pagetable import PageTable
from repro.mem.region import Region
from repro.mem.tlb import TLB
from repro.noc.topology import Mesh
from repro.runtime.extensions import TdNucaRuntime
from repro.runtime.task import Dependency, Task

AMAP = AddressMap(64, 512)
MESH = Mesh(4, 4)


def make_runtime(**kw):
    pt = PageTable(AMAP, 0.0)
    tlbs = [TLB(pt, 16) for _ in range(16)]
    rrts = [RRT(c) for c in range(16)]
    isa = TdNucaISA(AMAP, tlbs, rrts, LatencyConfig())
    flushes = []

    def executor(blocks, level, tiles):
        flushes.append((level, tiles, len(blocks)))
        return len(blocks), 0

    isa.flush_executor = executor
    return TdNucaRuntime(MESH, isa, **kw), pt, flushes


R = Region(0x1000, 0x400)


def task(*deps):
    return Task("t", tuple(Dependency(r, m) for r, m in deps))


class TestUseDescLifecycle:
    def test_create_increments(self):
        rt, _, _ = make_runtime()
        rt.on_task_created(task((R, DepMode.IN)))
        rt.on_task_created(task((R, DepMode.IN)))
        assert rt.directory.entry(R).use_desc == 2

    def test_start_decrements(self):
        rt, _, _ = make_runtime()
        t = task((R, DepMode.IN))
        rt.on_task_created(t)
        rt.on_task_start(t, 0)
        assert rt.directory.entry(R).use_desc == 0


class TestPlacements:
    def test_last_use_bypasses_and_registers_zero_mask(self):
        rt, pt, _ = make_runtime()
        t = task((R, DepMode.IN))
        rt.on_task_created(t)
        rt.on_task_start(t, 3)
        paddr = pt.translate(R.start)
        assert rt.isa.rrts[3].lookup(paddr) == 0
        assert rt.stats.bypass_decisions == 1

    def test_inout_maps_local_and_flushes_at_end(self):
        rt, pt, flushes = make_runtime()
        t1, t2 = task((R, DepMode.INOUT)), task((R, DepMode.INOUT))
        rt.on_task_created(t1)
        rt.on_task_created(t2)
        rt.on_task_start(t1, 5)
        paddr = pt.translate(R.start)
        assert rt.isa.rrts[5].lookup(paddr) == 1 << 5
        assert rt.directory.entry(R).map_mask == 1 << 5
        rt.on_task_end(t1, 5)
        # Flushed from LLC bank 5 and core 5's L1; RRT entry gone.
        levels = [(lvl, tiles) for lvl, tiles, _ in flushes]
        assert ("llc", (5,)) in levels
        assert ("l1", (5,)) in levels
        assert rt.isa.rrts[5].lookup(paddr) is None
        assert rt.directory.entry(R).map_mask == 0

    def test_reused_input_replicates_and_persists(self):
        rt, pt, flushes = make_runtime()
        t1, t2 = task((R, DepMode.IN)), task((R, DepMode.IN))
        rt.on_task_created(t1)
        rt.on_task_created(t2)
        rt.on_task_start(t1, 0)
        paddr = pt.translate(R.start)
        cluster_mask = sum(1 << b for b in MESH.local_cluster_tiles(0))
        assert rt.isa.rrts[0].lookup(paddr) == cluster_mask
        rt.on_task_end(t1, 0)
        # Replicated mapping remains for future tasks (Section III-C2).
        assert rt.isa.rrts[0].lookup(paddr) == cluster_mask
        assert flushes == []
        assert rt.directory.entry(R).replicated

    def test_replicas_accumulate_across_clusters(self):
        rt, _, _ = make_runtime()
        ts = [task((R, DepMode.IN)) for _ in range(3)]
        for t in ts:
            rt.on_task_created(t)
        rt.on_task_start(ts[0], 0)  # cluster 0
        rt.on_task_start(ts[1], 15)  # cluster 3
        entry = rt.directory.entry(R)
        expected = sum(1 << b for b in MESH.local_cluster_tiles(0)) | sum(
            1 << b for b in MESH.local_cluster_tiles(15)
        )
        assert entry.map_mask == expected


class TestLazyInvalidation:
    def test_write_after_replication_invalidates_everywhere(self):
        """Section III-C2: read-only -> written transition."""
        rt, pt, flushes = make_runtime()
        reader1, reader2, writer = (
            task((R, DepMode.IN)),
            task((R, DepMode.IN)),
            task((R, DepMode.INOUT)),
        )
        for t in (reader1, reader2, writer):
            rt.on_task_created(t)
        rt.on_task_start(reader1, 0)
        rt.on_task_end(reader1, 0)
        flushes.clear()
        rt.on_task_start(writer, 7)
        assert rt.stats.lazy_invalidations == 1
        levels = [lvl for lvl, _, _ in flushes]
        assert "l1" in levels and "llc" in levels
        # All-core L1 flush.
        l1_tiles = next(t for lvl, t, _ in flushes if lvl == "l1")
        assert l1_tiles == tuple(range(16))
        paddr = pt.translate(R.start)
        # Replica entries were cleared before the writer's own mapping.
        assert rt.isa.rrts[0].lookup(paddr) is None

    def test_no_lazy_invalidation_without_replication(self):
        rt, _, _ = make_runtime()
        w1, w2 = task((R, DepMode.OUT)), task((R, DepMode.OUT))
        rt.on_task_created(w1)
        rt.on_task_created(w2)
        rt.on_task_start(w1, 0)
        rt.on_task_end(w1, 0)
        rt.on_task_start(w2, 1)
        assert rt.stats.lazy_invalidations == 0


class TestReplicaRetirement:
    def test_last_use_retires_stale_replicas(self):
        """Regression: replicas of a never-written dependency must be
        retired at its last predicted use or RRTs fill up (the LU leak)."""
        rt, pt, flushes = make_runtime()
        readers = [task((R, DepMode.IN)) for _ in range(2)]
        for t in readers:
            rt.on_task_created(t)
        rt.on_task_start(readers[0], 0)  # replicates in cluster 0
        rt.on_task_end(readers[0], 0)
        flushes.clear()
        rt.on_task_start(readers[1], 1)  # last use -> bypass + retirement
        paddr = pt.translate(R.start)
        # Old replica entries gone everywhere; only the bypass entry on
        # core 1 remains.
        assert rt.isa.rrts[0].lookup(paddr) is None
        assert rt.isa.rrts[1].lookup(paddr) == 0
        assert any(lvl == "llc" for lvl, _, _ in flushes)
        rt.on_task_end(readers[1], 1)
        assert rt.isa.rrts[1].lookup(paddr) is None
        assert all(r.occupancy == 0 for r in rt.isa.rrts)


class TestBypassOnlyVariant:
    def test_reused_deps_untracked(self):
        rt, pt, _ = make_runtime(bypass_only=True)
        t1, t2 = task((R, DepMode.IN)), task((R, DepMode.IN))
        rt.on_task_created(t1)
        rt.on_task_created(t2)
        rt.on_task_start(t1, 0)
        assert rt.isa.rrts[0].lookup(pt.translate(R.start)) is None
        assert rt.stats.untracked_decisions == 1

    def test_bypass_still_happens(self):
        rt, pt, _ = make_runtime(bypass_only=True)
        t = task((R, DepMode.IN))
        rt.on_task_created(t)
        rt.on_task_start(t, 0)
        assert rt.isa.rrts[0].lookup(pt.translate(R.start)) == 0


class TestNoIsaMode:
    def test_software_runs_hardware_untouched(self):
        rt, pt, flushes = make_runtime(execute_isa=False)
        t = task((R, DepMode.INOUT))
        rt.on_task_created(t)
        cycles = rt.on_task_start(t, 0)
        assert cycles > 0  # software bookkeeping is charged
        assert rt.isa.rrts[0].occupancy == 0
        rt.on_task_end(t, 0)
        assert flushes == []
        assert rt.stats.decisions == 1


class TestOccupancySampling:
    def test_sampled_each_start(self):
        rt, _, _ = make_runtime()
        t1, t2 = task((R, DepMode.IN)), task((R, DepMode.IN))
        rt.on_task_created(t1)
        rt.on_task_created(t2)
        rt.on_task_start(t1, 0)
        assert rt.stats.occupancy_samples == 16
        assert rt.stats.occupancy_max >= 1

    def test_reset(self):
        rt, _, _ = make_runtime()
        t = task((R, DepMode.IN))
        rt.on_task_created(t)
        rt.on_task_start(t, 0)
        rt.reset_stats()
        assert rt.stats.occupancy_samples == 0
        assert rt.usage == {}


class TestUsageCensus:
    def test_categories(self):
        rt, _, _ = make_runtime()
        r_in = Region(0x4000, 0x200)
        r_out = Region(0x5000, 0x200)
        r_both = Region(0x6000, 0x200)
        tasks = [
            task((r_in, DepMode.IN)),
            task((r_in, DepMode.IN)),
            task((r_out, DepMode.OUT)),
            task((r_out, DepMode.OUT)),
            task((r_both, DepMode.IN)),
            task((r_both, DepMode.OUT)),
            task((R, DepMode.IN)),  # single use -> always bypassed
        ]
        for t in tasks:
            rt.on_task_created(t)
        for i, t in enumerate(tasks):
            rt.on_task_start(t, i % 16)
            rt.on_task_end(t, i % 16)
        cats = rt.dependency_categories()
        assert [r.start for r in cats["not_reused"]] == [R.start]
        assert [r.start for r in cats["in"]] == [r_in.start]
        assert [r.start for r in cats["out"]] == [r_out.start]
        assert [r.start for r in cats["both"]] == [r_both.start]
