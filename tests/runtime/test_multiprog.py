"""Multiprogramming extension (Section III-D): PID-tagged RRTs, merged
programs, process termination, thread migration."""

import pytest

from repro.deps import DepMode
from repro.mem.region import Region
from repro.runtime import Executor
from repro.runtime.multiprog import MultiProcessRuntime, merge_programs
from repro.runtime.task import Dependency, Program, Task
from repro.sim.machine import build_machine

from tests.conftest import tiny_config


def make_program(base, n_tasks=6, name="p"):
    prog = Program(name)
    phase = prog.new_phase()
    shared = Region(base, 0x400, f"{name}.shared")
    for i in range(n_tasks):
        chunk = Region(base + 0x1000 + i * 0x400, 0x400, f"{name}.c{i}")
        phase.append(
            Task(
                f"{name}[{i}]",
                (
                    Dependency(shared, DepMode.IN),
                    Dependency(chunk, DepMode.INOUT),
                ),
            )
        )
    return prog


class TestMergePrograms:
    def test_tags_and_interleaves(self):
        merged = merge_programs(
            {1: make_program(0x10000, name="a"), 2: make_program(0x80000, name="b")}
        )
        pids = {t.pid for t in merged.tasks}
        assert pids == {1, 2}
        assert merged.num_tasks == 12

    def test_phase_alignment(self):
        a = Program("a")
        a.new_phase().append(
            Task("a0", (Dependency(Region(0x10000, 64), DepMode.OUT),))
        )
        a.new_phase().append(
            Task("a1", (Dependency(Region(0x10040, 64), DepMode.OUT),))
        )
        b = Program("b")
        b.new_phase().append(
            Task("b0", (Dependency(Region(0x80000, 64), DepMode.OUT),))
        )
        merged = merge_programs({1: a, 2: b})
        assert [len(ph) for ph in merged.phases] == [2, 1]

    def test_overlapping_address_spaces_rejected(self):
        with pytest.raises(ValueError):
            merge_programs(
                {1: make_program(0x10000), 2: make_program(0x10000)}
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_programs({})


class TestMultiProcessExecution:
    def run_two(self):
        cfg = tiny_config()
        machine = build_machine(cfg, "tdnuca", fragmentation=0.0)
        ext = MultiProcessRuntime(machine.mesh, machine.isa, pids=[1, 2])
        merged = merge_programs(
            {1: make_program(0x10000, name="a"), 2: make_program(0x80000, name="b")}
        )
        stats = Executor(machine, extension=ext).run(merged)
        return machine, ext, stats

    def test_both_processes_complete(self):
        _, ext, stats = self.run_two()
        assert stats.tasks_executed == 12
        assert ext.context_switches > 0

    def test_rrt_entries_tagged_per_pid(self):
        """Snapshot RRT contents mid-run: both processes hold concurrent,
        correctly tagged entries (no save/restore at context switches)."""
        cfg = tiny_config()
        machine = build_machine(cfg, "tdnuca", fragmentation=0.0)
        ext = MultiProcessRuntime(machine.mesh, machine.isa, pids=[1, 2])
        merged = merge_programs(
            {1: make_program(0x10000, name="a"), 2: make_program(0x80000, name="b")}
        )
        seen = {1: 0, 2: 0}
        orig = ext.on_task_start

        def spy(task, core):
            cycles = orig(task, core)
            for rrt in machine.isa.rrts:
                for pid in (1, 2):
                    entries = rrt.entries(pid)
                    assert all(e.pid == pid for e in entries)
                    seen[pid] += len(entries)
            return cycles

        ext.on_task_start = spy
        Executor(machine, extension=ext).run(merged)
        assert seen[1] > 0 and seen[2] > 0

    def test_per_process_decisions_isolated(self):
        _, ext, _ = self.run_two()
        for pid in (1, 2):
            st = ext.runtimes[pid].stats
            assert st.decisions == 12  # 6 tasks x 2 deps

    def test_terminate_drops_entries(self):
        machine, ext, _ = self.run_two()
        # Simulate a process exiting while still holding RRT entries.
        machine.isa.rrts[0].set_active_pid(2)
        machine.isa.rrts[0].register(0x1000, 0x2000, 0b11)
        machine.isa.rrts[5].set_active_pid(2)
        machine.isa.rrts[5].register(0x1000, 0x2000, 0b11)
        freed = ext.terminate(2)
        assert freed == 2
        assert all(not rrt.entries(2) for rrt in machine.isa.rrts)
        assert 2 not in ext.runtimes

    def test_unknown_pid_rejected(self):
        cfg = tiny_config()
        machine = build_machine(cfg, "tdnuca", fragmentation=0.0)
        ext = MultiProcessRuntime(machine.mesh, machine.isa, pids=[1])
        stray = Task(
            "stray", (Dependency(Region(0x90000, 64), DepMode.IN),), pid=9
        )
        with pytest.raises(KeyError):
            ext.on_task_created(stray)

    def test_no_pids_rejected(self):
        machine = build_machine(tiny_config(), "tdnuca")
        with pytest.raises(ValueError):
            MultiProcessRuntime(machine.mesh, machine.isa, pids=[])


class TestThreadMigration:
    def test_entries_move_and_l1_flushed(self):
        from repro.runtime.extensions import TdNucaRuntime

        cfg = tiny_config()
        machine = build_machine(cfg, "tdnuca", fragmentation=0.0)
        ext = TdNucaRuntime(machine.mesh, machine.isa)
        region = Region(0x10000, 0x400)
        t1 = Task("t1", (Dependency(region, DepMode.IN),))
        t2 = Task("t2", (Dependency(region, DepMode.IN),))
        ext.on_task_created(t1)
        ext.on_task_created(t2)
        ext.on_task_start(t1, 3)  # replicated; registered on core 3
        machine.run_task_trace(3, t1)
        assert machine.isa.rrts[3].occupancy > 0
        assert machine.l1s[3].occupancy > 0

        cycles = ext.on_thread_migration(3, 7)
        assert cycles > 0
        assert machine.isa.rrts[3].occupancy == 0
        assert machine.isa.rrts[7].occupancy > 0
        # The tracked region left core 3's private cache.
        paddr = machine.pagetable.translate(region.start)
        assert not machine.l1s[3].contains(paddr >> machine.amap.block_shift)

    def test_same_core_noop(self):
        from repro.runtime.extensions import TdNucaRuntime

        machine = build_machine(tiny_config(), "tdnuca")
        ext = TdNucaRuntime(machine.mesh, machine.isa)
        assert ext.on_thread_migration(2, 2) == 0
