"""Ready-queue policies."""

from repro.deps import DepMode
from repro.mem.region import Region
from repro.runtime.scheduler import (
    FifoScheduler,
    LocalityScheduler,
    OrderedScheduler,
    RandomScheduler,
)
from repro.runtime.task import Dependency, Task

R = Region(0x1000, 0x100)


def task(name, affinity=None):
    return Task(name, (Dependency(R, DepMode.IN),), affinity=affinity)


class TestFifo:
    def test_order(self):
        s = FifoScheduler()
        a, b = task("a"), task("b")
        s.add_ready(a)
        s.add_ready(b)
        assert s.next_task(0) is a
        assert s.next_task(1) is b
        assert s.next_task(0) is None

    def test_len(self):
        s = FifoScheduler()
        assert not s.has_work()
        s.add_ready(task("a"))
        assert len(s) == 1 and s.has_work()


class TestOrdered:
    def test_program_order_beats_readiness_order(self):
        s = OrderedScheduler()
        a, b, c = task("a"), task("b"), task("c")
        s.add_ready(c)
        s.add_ready(a)  # created earlier (lower tid)
        assert s.next_task(0) is a
        s.add_ready(b)
        assert s.next_task(0) is b
        assert s.next_task(0) is c

    def test_empty(self):
        assert OrderedScheduler().next_task(0) is None


class TestLocality:
    def test_affinity_respected(self):
        s = LocalityScheduler(4)
        t = task("t", affinity=2)
        s.add_ready(t)
        assert s.next_task(2) is t

    def test_global_fallback(self):
        s = LocalityScheduler(4)
        t = task("t")
        s.add_ready(t)
        assert s.next_task(3) is t

    def test_stealing(self):
        s = LocalityScheduler(4)
        t = task("t", affinity=0)
        s.add_ready(t)
        assert s.next_task(1) is t  # stolen from core 0's queue

    def test_own_queue_first(self):
        s = LocalityScheduler(4)
        mine = task("mine", affinity=1)
        other = task("other")
        s.add_ready(other)
        s.add_ready(mine)
        assert s.next_task(1) is mine

    def test_len(self):
        s = LocalityScheduler(2)
        s.add_ready(task("a", affinity=0))
        s.add_ready(task("b"))
        assert len(s) == 2


class TestRandom:
    def test_seeded_determinism(self):
        def run(seed):
            s = RandomScheduler(seed)
            ts = [task(str(i)) for i in range(10)]
            for t in ts:
                s.add_ready(t)
            return [s.next_task(0).name for _ in range(10)]

        assert run(7) == run(7)

    def test_drains_everything(self):
        s = RandomScheduler(0)
        for i in range(20):
            s.add_ready(task(str(i)))
        names = {s.next_task(0).name for _ in range(20)}
        assert len(names) == 20
        assert s.next_task(0) is None
