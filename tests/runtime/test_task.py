"""Tasks, dependencies, access chunks, programs."""

import pytest

from repro.deps import DepMode
from repro.mem.region import Region
from repro.runtime.task import AccessChunk, Dependency, Program, Task

RA = Region(0x1000, 0x400, "a")
RB = Region(0x2000, 0x400, "b")


class TestDependency:
    def test_empty_region_rejected(self):
        with pytest.raises(ValueError):
            Dependency(Region(0, 0), DepMode.IN)


class TestAccessChunk:
    def test_bad_passes(self):
        with pytest.raises(ValueError):
            AccessChunk(RA, False, 0)


class TestTask:
    def test_unique_tids(self):
        t1 = Task("a", (Dependency(RA, DepMode.IN),))
        t2 = Task("b", (Dependency(RA, DepMode.IN),))
        assert t1.tid != t2.tid

    def test_footprint(self):
        t = Task("t", (Dependency(RA, DepMode.IN), Dependency(RB, DepMode.OUT)))
        assert t.footprint_bytes() == 0x800

    def test_dep_regions_filtered(self):
        t = Task("t", (Dependency(RA, DepMode.IN), Dependency(RB, DepMode.OUT)))
        assert t.dep_regions(DepMode.IN) == [RA]
        assert t.dep_regions() == [RA, RB]

    def test_bad_params(self):
        with pytest.raises(ValueError):
            Task("t", (), read_passes=0)
        with pytest.raises(ValueError):
            Task("t", (), extra_compute_cycles=-1)


class TestDerivedAccesses:
    def test_in_becomes_read_sweep(self):
        t = Task("t", (Dependency(RA, DepMode.IN),))
        (chunk,) = t.effective_accesses()
        assert not chunk.write and not chunk.rmw

    def test_out_becomes_write_sweep(self):
        t = Task("t", (Dependency(RA, DepMode.OUT),))
        (chunk,) = t.effective_accesses()
        assert chunk.write and not chunk.rmw

    def test_inout_becomes_rmw(self):
        t = Task("t", (Dependency(RA, DepMode.INOUT),))
        (chunk,) = t.effective_accesses()
        assert chunk.write and chunk.rmw

    def test_reads_before_out_writes(self):
        t = Task("t", (Dependency(RB, DepMode.OUT), Dependency(RA, DepMode.IN)))
        chunks = t.effective_accesses()
        assert [c.write for c in chunks] == [False, True]

    def test_explicit_accesses_win(self):
        explicit = (AccessChunk(RB, True, 3),)
        t = Task("t", (Dependency(RA, DepMode.IN),), explicit)
        assert t.effective_accesses() == explicit

    def test_passes_propagate(self):
        t = Task("t", (Dependency(RA, DepMode.IN),), read_passes=4)
        assert t.effective_accesses()[0].passes == 4


class TestProgram:
    def test_add_creates_phase(self):
        p = Program("p")
        t = Task("t", (Dependency(RA, DepMode.IN),))
        p.add(t)
        assert p.num_tasks == 1
        assert len(p.phases) == 1

    def test_new_phase_is_taskwait(self):
        p = Program("p")
        p.add(Task("a", (Dependency(RA, DepMode.IN),)))
        p.new_phase()
        p.add(Task("b", (Dependency(RA, DepMode.IN),)))
        assert [len(ph) for ph in p.phases] == [1, 1]

    def test_tasks_in_program_order(self):
        p = Program("p")
        a = p.add(Task("a", (Dependency(RA, DepMode.IN),)))
        p.new_phase()
        b = p.add(Task("b", (Dependency(RA, DepMode.IN),)))
        assert p.tasks == [a, b]

    def test_unique_footprint(self):
        p = Program("p")
        p.add(Task("a", (Dependency(RA, DepMode.IN),)))
        p.add(Task("b", (Dependency(RA, DepMode.INOUT), Dependency(RB, DepMode.OUT))))
        assert p.total_footprint_bytes() == 0x800  # RA counted once
