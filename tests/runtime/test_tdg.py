"""Task dependency graph construction."""

import pytest

from repro.deps import DepMode
from repro.mem.region import Region
from repro.runtime.task import Dependency, Task
from repro.runtime.tdg import TaskGraph

R = Region(0x1000, 0x400)
R2 = Region(0x2000, 0x400)


def task(name, *deps):
    return Task(name, tuple(Dependency(r, m) for r, m in deps))


class TestEdges:
    def test_raw_edge(self):
        g = TaskGraph()
        w = task("w", (R, DepMode.OUT))
        r = task("r", (R, DepMode.IN))
        g.add_task(w)
        g.add_task(r)
        assert g.successors_of(w) == [r]
        assert g.pending_of(r) == 1
        assert g.edges == 1

    def test_waw_edge(self):
        g = TaskGraph()
        w1 = task("w1", (R, DepMode.OUT))
        w2 = task("w2", (R, DepMode.OUT))
        g.add_task(w1)
        g.add_task(w2)
        assert g.successors_of(w1) == [w2]

    def test_war_edge(self):
        g = TaskGraph()
        r = task("r", (R, DepMode.IN))
        w = task("w", (R, DepMode.OUT))
        g.add_task(r)
        g.add_task(w)
        assert g.successors_of(r) == [w]

    def test_readers_do_not_serialize(self):
        g = TaskGraph()
        w = task("w", (R, DepMode.OUT))
        r1 = task("r1", (R, DepMode.IN))
        r2 = task("r2", (R, DepMode.IN))
        for t in (w, r1, r2):
            g.add_task(t)
        assert g.successors_of(r1) == []
        assert set(t.name for t in g.successors_of(w)) == {"r1", "r2"}

    def test_writer_after_readers_waits_for_all(self):
        g = TaskGraph()
        w1 = task("w1", (R, DepMode.OUT))
        r1 = task("r1", (R, DepMode.IN))
        r2 = task("r2", (R, DepMode.IN))
        w2 = task("w2", (R, DepMode.OUT))
        for t in (w1, r1, r2, w2):
            g.add_task(t)
        # WAW from w1 (still the last writer) plus WAR from both readers.
        assert g.pending_of(w2) == 3

    def test_inout_chains(self):
        g = TaskGraph()
        ts = [task(f"t{i}", (R, DepMode.INOUT)) for i in range(4)]
        for t in ts:
            g.add_task(t)
        for a, b in zip(ts, ts[1:]):
            assert g.successors_of(a) == [b]

    def test_no_self_edge(self):
        g = TaskGraph()
        t = task("t", (R, DepMode.IN), (R, DepMode.OUT))
        g.add_task(t)
        assert g.pending_of(t) == 0

    def test_disjoint_regions_no_edges(self):
        g = TaskGraph()
        g.add_task(task("a", (R, DepMode.OUT)))
        g.add_task(task("b", (R2, DepMode.OUT)))
        assert g.edges == 0

    def test_duplicate_edges_collapsed(self):
        g = TaskGraph()
        a = task("a", (R, DepMode.OUT), (R2, DepMode.OUT))
        b = task("b", (R, DepMode.IN), (R2, DepMode.IN))
        g.add_task(a)
        g.add_task(b)
        assert g.edges == 1
        assert g.pending_of(b) == 1

    def test_duplicate_task_rejected(self):
        g = TaskGraph()
        t = task("t", (R, DepMode.IN))
        g.add_task(t)
        with pytest.raises(ValueError):
            g.add_task(t)


class TestReadiness:
    def test_initial_ready(self):
        g = TaskGraph()
        a = task("a", (R, DepMode.OUT))
        b = task("b", (R, DepMode.IN))
        c = task("c", (R2, DepMode.OUT))
        for t in (a, b, c):
            g.add_task(t)
        assert set(t.name for t in g.initial_ready()) == {"a", "c"}

    def test_mark_finished_releases(self):
        g = TaskGraph()
        a = task("a", (R, DepMode.OUT))
        b = task("b", (R, DepMode.IN))
        g.add_task(a)
        g.add_task(b)
        g.initial_ready()
        assert g.mark_finished(a) == [b]
        assert g.all_finished() is False
        g.mark_finished(b)
        assert g.all_finished()

    def test_diamond(self):
        g = TaskGraph()
        src = task("src", (R, DepMode.OUT), (R2, DepMode.OUT))
        left = task("left", (R, DepMode.IN))
        right = task("right", (R2, DepMode.IN))
        sink = task("sink", (R, DepMode.IN), (R2, DepMode.IN))
        for t in (src, left, right, sink):
            g.add_task(t)
        assert g.initial_ready() == [src]
        released = g.mark_finished(src)
        assert set(t.name for t in released) == {"left", "right", "sink"}


class TestIntervalMode:
    def test_partial_overlap_detected(self):
        g = TaskGraph("interval")
        w = task("w", (Region(0x1000, 0x400), DepMode.OUT))
        r = task("r", (Region(0x1200, 0x400), DepMode.IN))  # overlaps half
        g.add_task(w)
        g.add_task(r)
        assert g.successors_of(w) == [r]

    def test_exact_mode_misses_partial_overlap(self):
        g = TaskGraph("exact")
        w = task("w", (Region(0x1000, 0x400), DepMode.OUT))
        r = task("r", (Region(0x1200, 0x400), DepMode.IN))
        g.add_task(w)
        g.add_task(r)
        assert g.edges == 0  # documented limitation of exact keying

    def test_section_spanning_producers(self):
        """A reduction reading one array section spanning many slices."""
        g = TaskGraph("interval")
        big = Region(0x1000, 0x1000)
        slices = [big.subregion(i * 0x400, 0x400) for i in range(4)]
        producers = [task(f"p{i}", (s, DepMode.OUT)) for i, s in enumerate(slices)]
        reducer = task("red", (big, DepMode.IN))
        for t in producers:
            g.add_task(t)
        g.add_task(reducer)
        assert g.pending_of(reducer) == 4

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            TaskGraph("fuzzy")
