"""TDG visualization (DOT export)."""

from repro.deps import DepMode
from repro.mem.region import Region
from repro.runtime.task import Dependency, Program, Task
from repro.runtime.tdgviz import program_to_dot, tdg_edge_list


def make_program():
    prog = Program("demo")
    phase = prog.new_phase()
    r = Region(0x1000, 0x100)
    a = Task("produce[0]", (Dependency(r, DepMode.OUT),))
    b = Task("consume[0]", (Dependency(r, DepMode.IN),))
    c = Task("consume[1]", (Dependency(r, DepMode.IN),))
    phase.extend([a, b, c])
    return prog, (a, b, c)


class TestEdgeList:
    def test_raw_edges(self):
        prog, (a, b, c) = make_program()
        edges = tdg_edge_list(prog)
        assert (a, b) in edges and (a, c) in edges
        assert len(edges) == 2

    def test_max_tasks_clips(self):
        prog, (a, b, c) = make_program()
        edges = tdg_edge_list(prog, max_tasks=2)
        assert edges == [(a, b)]

    def test_phases_independent(self):
        prog, _ = make_program()
        r2 = Region(0x9000, 0x100)
        phase2 = prog.new_phase()
        phase2.append(Task("later[0]", (Dependency(r2, DepMode.IN),)))
        edges = tdg_edge_list(prog)
        assert len(edges) == 2  # no cross-phase edges (taskwait barrier)


class TestDot:
    def test_valid_structure(self):
        prog, (a, b, c) = make_program()
        dot = program_to_dot(prog)
        assert dot.startswith('digraph "demo"')
        assert dot.rstrip().endswith("}")
        assert f"t{a.tid} -> t{b.tid};" in dot
        assert f'label="produce[0]"' in dot

    def test_kernels_colored_consistently(self):
        prog, (a, b, c) = make_program()
        dot = program_to_dot(prog)
        color_of = {}
        for line in dot.splitlines():
            if "label=" in line:
                name = line.split('label="')[1].split('"')[0]
                color = line.split('fillcolor="')[1].split('"')[0]
                color_of[name] = color
        assert color_of["consume[0]"] == color_of["consume[1]"]
        assert color_of["produce[0]"] != color_of["consume[0]"]

    def test_warmup_skipped_by_default(self):
        prog, _ = make_program()
        init_phase = [Task("init[0]", (Dependency(Region(0x1000, 0x100), DepMode.OUT),))]
        prog.phases.insert(0, init_phase)
        prog.warmup_phases = 1
        assert "init[0]" not in program_to_dot(prog)
        assert "init[0]" in program_to_dot(prog, include_warmup=True)

    def test_max_tasks_limits_nodes(self):
        prog, (a, b, c) = make_program()
        dot = program_to_dot(prog, max_tasks=1)
        assert "produce[0]" in dot
        assert "consume[1]" not in dot

    def test_cholesky_renders(self):
        from repro.config import scaled_config
        from repro.workloads.registry import get_workload

        prog = get_workload("cholesky").build(scaled_config(1 / 1024))
        dot = program_to_dot(prog, max_tasks=40)
        assert "potrf[0]" in dot
        assert "->" in dot
