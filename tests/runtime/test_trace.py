"""Trace generation from access chunks."""

import numpy as np

from repro.deps import DepMode
from repro.mem.address import AddressMap
from repro.mem.region import Region
from repro.runtime.task import AccessChunk, Dependency, Task
from repro.runtime.trace import build_trace

AMAP = AddressMap(64, 512)
R = Region(0x1000, 0x100)  # blocks 64..67


def trace_of(*chunks):
    t = Task("t", (Dependency(R, DepMode.IN),), tuple(chunks))
    return build_trace(t, AMAP)


class TestSweeps:
    def test_read_sweep(self):
        tr = trace_of(AccessChunk(R, False))
        assert tr.vblocks.tolist() == [64, 65, 66, 67]
        assert not tr.writes.any()

    def test_write_sweep(self):
        tr = trace_of(AccessChunk(R, True))
        assert tr.writes.all()

    def test_passes_tile(self):
        tr = trace_of(AccessChunk(R, False, passes=3))
        assert len(tr) == 12
        assert tr.vblocks.tolist() == [64, 65, 66, 67] * 3

    def test_chunk_order_preserved(self):
        r2 = Region(0x2000, 0x40)  # block 128
        tr = trace_of(AccessChunk(r2, True), AccessChunk(R, False))
        assert tr.vblocks[0] == 128
        assert tr.writes[0]

    def test_partial_blocks_included(self):
        """The program really touches partially covered blocks; only
        TD-NUCA *management* excludes them (Section III-D)."""
        r = Region(0x1020, 0x50)  # straddles blocks 64..65
        tr = trace_of(AccessChunk(r, False))
        assert tr.vblocks.tolist() == [64, 65]

    def test_empty_task(self):
        t = Task("t", (Dependency(R, DepMode.IN),), (AccessChunk(Region(0, 1), False),))
        t2 = Task("empty", ())
        assert len(build_trace(t2, AMAP)) == 0


class TestRMW:
    def test_interleaved_read_write(self):
        tr = trace_of(AccessChunk(R, True, rmw=True))
        assert tr.vblocks.tolist() == [64, 64, 65, 65, 66, 66, 67, 67]
        assert tr.writes.tolist() == [False, True] * 4

    def test_rmw_passes(self):
        tr = trace_of(AccessChunk(R, True, passes=2, rmw=True))
        assert len(tr) == 16
        assert tr.writes.tolist() == [False, True] * 8


class TestDerivedTraces:
    def test_inout_dep_yields_rmw_trace(self):
        t = Task("t", (Dependency(R, DepMode.INOUT),))
        tr = build_trace(t, AMAP)
        assert tr.vblocks.tolist()[:2] == [64, 64]
        assert tr.writes.tolist()[:2] == [False, True]

    def test_shape_mismatch_rejected(self):
        from repro.runtime.trace import TaskTrace
        import pytest

        with pytest.raises(ValueError):
            TaskTrace(np.zeros(3, dtype=np.int64), np.zeros(2, dtype=bool))


class TestTraceCache:
    """The shared geometry-keyed LRU behind build_trace_cached."""

    def _task(self, start=0x1000, size=0x100):
        region = Region(start, size)
        return Task(
            "t",
            (Dependency(region, DepMode.IN),),
            (AccessChunk(region, False, 1),),
        )

    def test_shared_across_address_map_instances(self):
        from repro.runtime.trace import TraceCache

        cache = TraceCache()
        amap_twin = AddressMap(64, 512)
        tr1 = cache.get_or_build(self._task(), AMAP)
        tr2 = cache.get_or_build(self._task(), amap_twin)
        assert tr1 is tr2
        assert (cache.hits, cache.misses) == (1, 1)

    def test_distinct_geometry_distinct_entries(self):
        from repro.runtime.trace import TraceCache

        cache = TraceCache()
        tr1 = cache.get_or_build(self._task(), AMAP)
        tr2 = cache.get_or_build(self._task(), AddressMap(64, 4096))
        assert tr1 is not tr2
        assert len(cache) == 2

    def test_lru_eviction_keeps_recently_used(self):
        from repro.runtime.trace import TraceCache

        cache = TraceCache(max_entries=2)
        a = cache.get_or_build(self._task(0x0000), AMAP)
        cache.get_or_build(self._task(0x1000), AMAP)
        # Touch `a` so the 0x1000 expansion is the LRU victim.
        assert cache.get_or_build(self._task(0x0000), AMAP) is a
        cache.get_or_build(self._task(0x2000), AMAP)
        assert len(cache) == 2
        assert cache.get_or_build(self._task(0x0000), AMAP) is a  # still hot
        before = cache.misses
        cache.get_or_build(self._task(0x1000), AMAP)  # evicted -> rebuild
        assert cache.misses == before + 1

    def test_default_cache_is_process_shared(self):
        from repro.runtime.trace import build_trace_cached, shared_trace_cache

        t = self._task(0x8000)
        tr1 = build_trace_cached(t, AMAP)
        hits_before = shared_trace_cache.hits
        tr2 = build_trace_cached(self._task(0x8000), AMAP)
        assert tr1 is tr2
        assert shared_trace_cache.hits == hits_before + 1

    def test_legacy_dict_cache_evicts_lru_not_everything(self):
        from repro.runtime import trace as trace_mod
        from repro.runtime.trace import build_trace_cached

        cache = {}
        old_max = trace_mod._TRACE_CACHE_MAX
        trace_mod._TRACE_CACHE_MAX = 2
        try:
            a = build_trace_cached(self._task(0x0000), AMAP, cache)
            build_trace_cached(self._task(0x1000), AMAP, cache)
            assert build_trace_cached(self._task(0x0000), AMAP, cache) is a
            build_trace_cached(self._task(0x2000), AMAP, cache)
            assert len(cache) == 2
            assert build_trace_cached(self._task(0x0000), AMAP, cache) is a
        finally:
            trace_mod._TRACE_CACHE_MAX = old_max
