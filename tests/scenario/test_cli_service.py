"""Scenario routing through the CLI and the service boundary."""

import warnings

import pytest

from repro.cli import build_parser, main
from repro.service.queue import spec_from_dict


class TestScenarioSubcommands:
    def test_list_shows_the_library(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "stress-8x8" in out
        assert "multiprog" in out

    def test_show_prints_fingerprint_and_machine(self, capsys):
        assert main(["scenario", "show", "stress-8x8"]) == 0
        out = capsys.readouterr().out
        assert "config_sha256" in out
        assert "8x8 mesh" in out

    def test_show_unknown_name_exits_2(self, capsys):
        assert main(["scenario", "show", "no-such"]) == 2
        assert "no-such" in capsys.readouterr().err

    def test_validate_good_and_bad(self, tmp_path, capsys):
        good = tmp_path / "good.yaml"
        good.write_text(
            "scenario: 1\nname: g\nworkload: kmeans\npolicy: tdnuca\n"
        )
        bad = tmp_path / "bad.yaml"
        bad.write_text(
            "scenario: 1\nname: b\nworkload: kmeans\npolicy: warp\n"
        )
        assert main(["scenario", "validate", str(good)]) == 0
        assert main(["scenario", "validate", str(good), str(bad)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "bad.yaml" in out and "warp" in out


class TestRunDispatch:
    def test_unknown_positional_fails_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "definitely-not-a-thing"])

    def test_scenario_name_parses_without_policy(self):
        args = build_parser().parse_args(["run", "stress-8x8"])
        assert args.workload == "stress-8x8"
        assert args.policy is None

    def test_scenario_plus_policy_is_an_error(self, capsys):
        assert main(["run", "stress-8x8", "tdnuca"]) == 2
        assert "policy" in capsys.readouterr().err

    def test_workload_without_policy_is_an_error(self, capsys):
        assert main(["run", "kmeans"]) == 2
        err = capsys.readouterr().err
        assert "needs a policy" in err and "tdnuca" in err

    def test_machine_flags_cannot_override_a_scenario(self, capsys):
        assert main(["run", "stress-8x8", "--scale", "2048"]) == 2
        err = capsys.readouterr().err
        assert "--scale" in err and "scenario show stress-8x8" in err

    def test_every_conflicting_run_flag_is_named(self, capsys):
        rc = main(
            ["run", "stress-8x8", "--seed", "7", "--strict",
             "--faults", "bank:5@task=10", "--mesh", "8x8"]
        )
        assert rc == 2
        err = capsys.readouterr().err
        for flag in ("--seed", "--strict", "--faults", "--mesh"):
            assert flag in err


class TestSubmitDispatch:
    def test_multiprog_scenario_rejected_locally(self, capsys):
        assert main(["submit", "multiprog-duo"]) == 2
        err = capsys.readouterr().err
        assert "multiprog" in err

    def test_scenario_plus_policy_is_an_error(self, capsys):
        assert main(["submit", "stress-8x8", "tdnuca"]) == 2
        assert "policy" in capsys.readouterr().err

    def test_machine_flags_cannot_override_a_scenario(self, capsys):
        assert main(["submit", "stress-8x8", "--scale", "2048"]) == 2
        err = capsys.readouterr().err
        assert "--scale" in err and "scenario show stress-8x8" in err


class TestServiceBoundary:
    def test_flat_body_warns_only_at_the_boundary(self):
        body = {"kind": "run", "workload": "kmeans", "policy": "tdnuca",
                "scale": 1024}
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            spec_from_dict(dict(body))  # internal round-trip: silent
        with pytest.warns(DeprecationWarning, match="scenario"):
            spec_from_dict(dict(body), warn_legacy=True)

    def test_scenario_body_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            spec_from_dict(
                {"kind": "run", "scenario": "stress-8x8"}, warn_legacy=True
            )

    def test_kind_endpoint_mismatch_rejected(self):
        with pytest.raises(ValueError, match="sweep"):
            spec_from_dict({"kind": "sweep", "scenario": "stress-8x8"})

    def test_multiprog_scenario_rejected_with_guidance(self):
        with pytest.raises(ValueError, match="repro run"):
            spec_from_dict({"kind": "run", "scenario": "multiprog-duo"})

    def test_wire_geometry_round_trips(self):
        spec = spec_from_dict(
            {"kind": "run", "workload": "kmeans", "policy": "tdnuca",
             "scale": 1024, "mesh": [8, 8], "rrt_entries": 16}
        )
        again = spec_from_dict(spec.to_dict())
        assert again == spec
        assert again.config().num_cores == 64
        assert again.config().rrt_entries == 16

    def test_default_spec_wire_format_is_unchanged(self):
        # Pre-scenario bodies must serialize byte-identically (poison
        # keys, spool files and old clients depend on it): no geometry
        # keys unless geometry was requested.
        spec = spec_from_dict(
            {"kind": "run", "workload": "kmeans", "policy": "tdnuca"}
        )
        assert set(spec.to_dict()) == {
            "kind", "workload", "policy", "seed", "scale", "faults",
            "strict", "kernel",
        }
