"""Scenario loading: library resolution, files, YAML/JSON, errors."""

import json
from pathlib import Path

import pytest

from repro.scenario import ScenarioError, load_scenario, scenario_names
from repro.scenario.loader import dump_scenario, loads_scenario
from repro.snapshot.format import config_sha256

FIXTURES = Path(__file__).parent / "fixtures"


class TestLibrary:
    def test_curated_library_has_at_least_ten(self):
        assert len(scenario_names()) >= 10

    def test_every_curated_scenario_loads(self):
        for name in scenario_names():
            sc = load_scenario(name)
            assert sc.name == name
            sc.to_config()  # compiles

    def test_unknown_name_lists_library(self):
        with pytest.raises(ScenarioError) as excinfo:
            load_scenario("no-such-scenario")
        assert "stress-8x8" in str(excinfo.value)

    def test_load_by_path_and_by_name_agree(self):
        from repro.scenario.loader import library_dir

        by_name = load_scenario("stress-8x8")
        by_path = load_scenario(str(library_dir() / "stress-8x8.yaml"))
        assert config_sha256(by_path.to_config()) == config_sha256(
            by_name.to_config()
        )


class TestFiles:
    def test_malformed_fixture_names_file_and_field(self):
        path = FIXTURES / "malformed.yaml"
        with pytest.raises(ScenarioError) as excinfo:
            load_scenario(str(path))
        err = excinfo.value
        assert path.name in str(err)
        assert err.field == "machine.mesh"

    def test_missing_file(self):
        with pytest.raises(ScenarioError):
            load_scenario("/nonexistent/dir/thing.yaml")

    def test_json_scenario_loads_without_yaml(self, tmp_path):
        doc = {"scenario": 1, "name": "j", "workload": "kmeans",
               "policy": "tdnuca"}
        path = tmp_path / "j.json"
        path.write_text(json.dumps(doc))
        assert load_scenario(str(path)).workload == "kmeans"

    def test_loads_json_string(self):
        doc = {"scenario": 1, "name": "s", "workload": "jacobi",
               "policy": "snuca"}
        sc = loads_scenario(json.dumps(doc), source="inline")
        assert sc.policy == "snuca"


class TestDump:
    def test_dump_round_trips(self):
        sc = load_scenario("fault-storm")
        text = dump_scenario(sc)
        rt = loads_scenario(text, source="dumped")
        assert config_sha256(rt.to_config()) == config_sha256(sc.to_config())
