"""Scenario schema: parsing, validation, and compilation to SystemConfig."""

import dataclasses

import pytest

from repro.config import scaled_config
from repro.scenario import (
    MachineSpec,
    Scenario,
    ScenarioError,
    parse_scenario,
    scenario_from_legacy_body,
)
from repro.sim.machine import POLICIES
from repro.snapshot.format import config_sha256
from repro.workloads.registry import workload_names

MINIMAL = {"scenario": 1, "name": "t", "workload": "kmeans", "policy": "tdnuca"}


class TestParse:
    def test_minimal_run(self):
        sc = parse_scenario(dict(MINIMAL))
        assert sc.kind == "run"
        assert sc.workload == "kmeans"
        assert sc.policy == "tdnuca"

    def test_version_stamp_optional_but_checked(self):
        parse_scenario({k: v for k, v in MINIMAL.items() if k != "scenario"})
        with pytest.raises(ScenarioError, match="schema version"):
            parse_scenario({**MINIMAL, "scenario": 99})

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ScenarioError, match="wrokload"):
            parse_scenario({**MINIMAL, "wrokload": "kmeans"})

    def test_unknown_workload_lists_registry(self):
        with pytest.raises(ScenarioError) as excinfo:
            parse_scenario({**MINIMAL, "workload": "nbody"})
        for name in workload_names():
            assert name in str(excinfo.value)
        assert excinfo.value.field == "workload"

    def test_unknown_policy_lists_registry(self):
        with pytest.raises(ScenarioError) as excinfo:
            parse_scenario({**MINIMAL, "policy": "hnuca"})
        for name in POLICIES:
            assert name in str(excinfo.value)

    def test_mutually_exclusive_shapes(self):
        raw = {
            **MINIMAL,
            "sweep": {"workloads": ["kmeans"], "policies": ["tdnuca"]},
        }
        with pytest.raises(ScenarioError):
            parse_scenario(raw)

    def test_source_attached_to_nested_errors(self):
        raw = {**MINIMAL, "machine": {"mesh": "banana"}}
        with pytest.raises(ScenarioError) as excinfo:
            parse_scenario(raw, source="exp.yaml")
        assert excinfo.value.source == "exp.yaml"
        assert "exp.yaml" in str(excinfo.value)
        assert "machine.mesh" in str(excinfo.value)

    @pytest.mark.parametrize(
        "mesh", ["8x8", [8, 8], {"width": 8, "height": 8}]
    )
    def test_geometry_forms(self, mesh):
        raw = {**MINIMAL, "machine": {"mesh": mesh, "cluster": "4x4"}}
        sc = parse_scenario(raw)
        assert (sc.machine.mesh_width, sc.machine.mesh_height) == (8, 8)
        assert sc.to_config().num_cores == 64


class TestCompile:
    def test_default_machine_matches_scaled_config(self):
        sc = parse_scenario(dict(MINIMAL))
        assert config_sha256(sc.to_config()) == config_sha256(
            scaled_config(1 / 64)
        )

    def test_faults_strict_match_legacy_replace(self):
        raw = {**MINIMAL, "faults": "bank:5@task=100", "strict": True}
        sc = parse_scenario(raw)
        legacy = dataclasses.replace(
            scaled_config(1 / 64),
            fault_spec="bank:5@task=100",
            strict_invariants=True,
        )
        assert config_sha256(sc.to_config()) == config_sha256(legacy)

    def test_kernel_never_changes_fingerprint(self):
        shas = {
            config_sha256(
                parse_scenario({**MINIMAL, "kernel": k}).to_config()
            )
            for k in ("auto", "reference", "vector")
        }
        assert len(shas) == 1

    def test_mesh_scale_out_picks_latency_band(self):
        raw = {**MINIMAL, "machine": {"mesh": "8x8", "cluster": "4x4"}}
        cfg = parse_scenario(raw).to_config()
        assert cfg.num_cores == 64
        assert cfg.latency.llc_hit == 18  # the 64-core latency table

    def test_invalid_geometry_compiles_to_scenario_error(self):
        raw = {**MINIMAL, "machine": {"mesh": "6x6", "cluster": "1x1"}}
        with pytest.raises(ScenarioError, match="power of two"):
            parse_scenario(raw)


class TestRoundTrip:
    def test_to_dict_stamps_version(self):
        assert parse_scenario(dict(MINIMAL)).to_dict()["scenario"] == 1

    def test_parse_of_to_dict_is_identity(self):
        raw = {
            **MINIMAL,
            "machine": {"scale": 256, "mesh": "8x8", "cluster": "4x4"},
            "faults": "bank:1@task=50",
            "seed": 7,
        }
        sc = parse_scenario(raw)
        rt = parse_scenario(sc.to_dict())
        assert config_sha256(rt.to_config()) == config_sha256(sc.to_config())
        assert rt.seed == sc.seed and rt.faults == sc.faults

    def test_from_config_round_trips(self):
        sc = parse_scenario(
            {**MINIMAL, "machine": {"scale": 128, "mesh": "8x8",
                                    "cluster": "4x4"}}
        )
        cfg = sc.to_config()
        back = Scenario.from_config(
            cfg, name="back", workload="kmeans", policy="tdnuca"
        )
        assert back is not None
        assert config_sha256(back.to_config()) == config_sha256(cfg)

    def test_from_config_refuses_inexpressible(self):
        cfg = dataclasses.replace(scaled_config(1 / 64), l1_assoc=4)
        assert Scenario.from_config(cfg, name="x") is None


class TestLegacyShim:
    def test_flat_body_compiles_identically(self):
        sc = scenario_from_legacy_body(
            {"kind": "run", "workload": "kmeans", "policy": "tdnuca",
             "scale": 64, "seed": 0}
        )
        assert config_sha256(sc.to_config()) == config_sha256(
            scaled_config(1 / 64)
        )

    def test_sweep_body(self):
        sc = scenario_from_legacy_body(
            {"kind": "sweep", "workloads": ["kmeans", "jacobi"],
             "policies": ["snuca", "tdnuca"], "scale": 256}
        )
        assert sc.kind == "sweep"
        assert sc.workloads == ("kmeans", "jacobi")


class TestProgrammatic:
    def test_machine_only_scenario_compiles(self):
        # The CLI's flag path: no workload, just geometry.
        cfg = Scenario(name="cli", machine=MachineSpec(scale=1024)).to_config()
        assert cfg.num_cores == 16

    def test_validate_requires_a_shape(self):
        with pytest.raises(ScenarioError):
            Scenario(name="empty").validate()

    def test_with_source_is_idempotent(self):
        err = ScenarioError("boom", field="f", source="a.yaml")
        assert err.with_source("b.yaml") is err
        bare = ScenarioError("boom", field="f")
        assert bare.with_source("b.yaml").source == "b.yaml"
