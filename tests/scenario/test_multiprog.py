"""Multiprogrammed scenarios: address rebasing and co-scheduled execution."""

import pytest

from repro.scenario import (
    CoRunner,
    MachineSpec,
    Scenario,
    ScenarioError,
    rebase_program,
    run_multiprog,
)
from repro.scenario.model import PID_ADDRESS_STRIDE
from repro.workloads.registry import get_workload

SMALL = MachineSpec(scale=2048)


def _cfg():
    return Scenario(name="m", machine=SMALL).to_config()


def _duo(policy="tdnuca", **kwargs) -> Scenario:
    return Scenario(
        name="duo",
        corunners=(CoRunner("md5"), CoRunner("histo", seed=3)),
        policy=policy,
        machine=SMALL,
        **kwargs,
    )


class TestRebase:
    def test_regions_shift_by_offset(self):
        cfg = _cfg()
        program = get_workload("md5").build(cfg, 0)
        before = {
            d.region.start for t in program.tasks for d in t.deps
        }
        rebase_program(program, PID_ADDRESS_STRIDE)
        after = {
            d.region.start for t in program.tasks for d in t.deps
        }
        assert after == {start + PID_ADDRESS_STRIDE for start in before}

    def test_value_identity_preserved(self):
        # Two deps naming the same region must still name *one* region
        # value after the move — the RRT keys its table on region values.
        cfg = _cfg()
        program = get_workload("kmeans").build(cfg, 0)
        rebase_program(program, PID_ADDRESS_STRIDE)
        seen = {}
        for task in program.tasks:
            for dep in task.deps:
                key = (dep.region.start, dep.region.size, dep.region.name)
                assert seen.setdefault(key, dep.region) == dep.region

    def test_zero_offset_is_noop(self):
        cfg = _cfg()
        program = get_workload("md5").build(cfg, 0)
        assert rebase_program(program, 0) is program

    def test_negative_offset_rejected(self):
        cfg = _cfg()
        program = get_workload("md5").build(cfg, 0)
        with pytest.raises(ValueError):
            rebase_program(program, -1)

    def test_corunner_slices_are_disjoint(self):
        cfg = _cfg()
        spans = []
        for pid, name in ((1, "md5"), (2, "histo")):
            program = rebase_program(
                get_workload(name).build(cfg, 0), pid * PID_ADDRESS_STRIDE
            )
            starts = [
                d.region.start for t in program.tasks for d in t.deps
            ]
            ends = [
                d.region.start + d.region.size
                for t in program.tasks for d in t.deps
            ]
            spans.append((min(starts), max(ends)))
        (lo1, hi1), (lo2, hi2) = spans
        assert hi1 <= lo2 or hi2 <= lo1


class TestRunMultiprog:
    def test_tdnuca_duo_runs_and_interleaves(self):
        result = run_multiprog(_duo())
        assert result.workload == "md5+histo"
        assert result.execution.tasks_executed > 0
        assert result.extra["context_switches"] > 0
        per_pid = result.extra["per_pid"]
        assert set(per_pid) == {1, 2}
        assert per_pid[1]["workload"] == "md5"
        assert per_pid[2]["workload"] == "histo"

    def test_baseline_policy_runs_without_rrt_state(self):
        result = run_multiprog(_duo(policy="snuca"))
        assert result.workload == "md5+histo"
        assert "context_switches" not in result.extra

    def test_noisa_rejected(self):
        with pytest.raises(ScenarioError, match="tdnuca-noisa"):
            run_multiprog(_duo(policy="tdnuca-noisa"))

    def test_single_process_scenario_rejected(self):
        single = Scenario(
            name="s", workload="kmeans", policy="tdnuca", machine=SMALL
        )
        with pytest.raises(ScenarioError, match="multiprog"):
            run_multiprog(single)

    def test_deterministic_across_repeats(self):
        a = run_multiprog(_duo())
        b = run_multiprog(_duo())
        assert a.makespan == b.makespan
        assert a.machine.llc_accesses == b.machine.llc_accesses
