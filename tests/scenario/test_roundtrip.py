"""The PR's acceptance invariant: one logical run, four front doors.

The same experiment expressed as (a) a curated YAML scenario, (b) CLI
flags, (c) Session kwargs and (d) a service submission body must compile
to the identical ``config_sha256`` — and actually running it must produce
byte-identical ``MachineStats`` regardless of the door it came through.
"""

import json

from repro.api import Session, run_scenario
from repro.cli import _cfg, build_parser
from repro.scenario import Scenario, load_scenario
from repro.service.cache import request_key
from repro.service.queue import spec_from_dict
from repro.snapshot.format import config_sha256

SCENARIO = "stress-8x8"  # kmeans/tdnuca, 8x8 mesh, 1/1024 scale
CLI_FLAGS = ["run", "kmeans", "tdnuca", "--scale", "1024", "--mesh", "8x8"]
LEGACY_BODY = {
    "kind": "run", "workload": "kmeans", "policy": "tdnuca",
    "scale": 1024, "mesh": [8, 8],
}


def _canon(result) -> str:
    return json.dumps(result.stats_dict(), sort_keys=True,
                      separators=(",", ":"))


class TestFingerprintIdentity:
    def test_yaml_cli_service_agree(self):
        yaml_sha = config_sha256(load_scenario(SCENARIO).to_config())
        cli_sha = config_sha256(_cfg(build_parser().parse_args(CLI_FLAGS)))
        by_name = spec_from_dict({"kind": "run", "scenario": SCENARIO})
        by_value = spec_from_dict(
            {"kind": "run",
             "scenario": load_scenario(SCENARIO).to_dict()}
        )
        legacy = spec_from_dict(dict(LEGACY_BODY))
        assert cli_sha == yaml_sha
        assert config_sha256(by_name.config()) == yaml_sha
        assert config_sha256(by_value.config()) == yaml_sha
        assert config_sha256(legacy.config()) == yaml_sha

    def test_service_cache_key_agrees_across_doors(self):
        scenario = load_scenario(SCENARIO)
        by_name = spec_from_dict({"kind": "run", "scenario": SCENARIO})
        legacy = spec_from_dict(dict(LEGACY_BODY))
        keys = {
            request_key(spec.config(), "kmeans", "tdnuca", spec.seed)
            for spec in (by_name, legacy)
        }
        keys.add(
            request_key(scenario.to_config(), "kmeans", "tdnuca",
                        scenario.seed)
        )
        assert len(keys) == 1

    def test_session_kwargs_door_agrees(self):
        scenario = load_scenario(SCENARIO)
        session = Session.from_scenario(SCENARIO)
        assert config_sha256(session.config) == config_sha256(
            scenario.to_config()
        )


class TestStatsIdentity:
    def test_scenario_and_session_runs_are_byte_identical(self):
        via_scenario = run_scenario(SCENARIO)
        session = Session.from_scenario(SCENARIO)
        via_session = session.run("kmeans", "tdnuca")
        assert _canon(via_scenario) == _canon(via_session)

    def test_session_kwargs_shim_matches_scenario(self):
        # Session.run(**kwargs) re-derives a Scenario internally; the
        # programmatic equivalent of the YAML file must match it too.
        programmatic = Scenario(
            name="prog",
            workload="kmeans",
            policy="tdnuca",
            machine=load_scenario(SCENARIO).machine,
        )
        via_prog = run_scenario(programmatic)
        via_yaml = run_scenario(SCENARIO)
        assert _canon(via_prog) == _canon(via_yaml)
