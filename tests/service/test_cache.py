"""Content-addressed result cache: roundtrip, keys, corruption handling."""

from __future__ import annotations

import json
import threading

import pytest

from repro.config import scaled_config
from repro.service.cache import (
    CACHE_MAGIC,
    ResultCache,
    request_key,
)

CFG = scaled_config(1 / 2048)
RESULT = {"workload": "md5", "policy": "tdnuca", "makespan_cycles": 123456}


class TestRequestKey:
    def test_deterministic(self):
        a = request_key(CFG, "md5", "tdnuca", 0)
        b = request_key(CFG, "md5", "tdnuca", 0)
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_every_component_changes_the_key(self):
        base = request_key(CFG, "md5", "tdnuca", 0)
        assert request_key(CFG, "knn", "tdnuca", 0) != base
        assert request_key(CFG, "md5", "snuca", 0) != base
        assert request_key(CFG, "md5", "tdnuca", 7) != base
        assert request_key(scaled_config(1 / 512), "md5", "tdnuca", 0) != base


class TestRoundtrip:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = request_key(CFG, "md5", "tdnuca", 0)
        assert cache.get(key) is None
        cache.put(key, RESULT, meta={"workload": "md5"})
        assert cache.get(key) == RESULT
        assert cache.stats() == {
            "entries": 1, "hits": 1, "misses": 1, "stores": 1, "corrupt": 0,
        }

    def test_contains_does_not_touch_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = request_key(CFG, "md5", "tdnuca", 0)
        assert key not in cache
        cache.put(key, RESULT, meta={})
        assert key in cache
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 0

    def test_payload_is_canonical_sorted_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = request_key(CFG, "md5", "tdnuca", 0)
        cache.put(key, RESULT, meta={})
        raw = cache.path_for(key).read_bytes()
        assert raw.startswith(CACHE_MAGIC)
        payload_bytes = raw[len(CACHE_MAGIC) + 8:]
        payload = json.loads(payload_bytes)
        assert payload_bytes == json.dumps(
            payload, sort_keys=True
        ).encode("utf-8")
        assert payload["result"] == RESULT
        assert payload["key"] == key


class TestCorruption:
    def _put_one(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = request_key(CFG, "md5", "tdnuca", 0)
        cache.put(key, RESULT, meta={})
        return cache, key

    def test_bit_flip_quarantines_and_degrades_to_miss(self, tmp_path):
        cache, key = self._put_one(tmp_path)
        path = cache.path_for(key)
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0x40
        path.write_bytes(bytes(raw))
        with pytest.warns(UserWarning, match="corrupt cache entry"):
            assert cache.get(key) is None
        assert not path.exists()
        quarantined = path.with_name(path.name + ".corrupt")
        assert quarantined.exists()
        stats = cache.stats()
        assert stats["corrupt"] == 1
        assert stats["misses"] == 1

    def test_recompute_after_quarantine_repopulates(self, tmp_path):
        cache, key = self._put_one(tmp_path)
        path = cache.path_for(key)
        path.write_bytes(b"garbage not even a header")
        with pytest.warns(UserWarning):
            assert cache.get(key) is None
        cache.put(key, RESULT, meta={})
        assert cache.get(key) == RESULT

    def test_wrong_magic_quarantined(self, tmp_path):
        cache, key = self._put_one(tmp_path)
        path = cache.path_for(key)
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.warns(UserWarning):
            assert cache.get(key) is None

    def test_key_mismatch_quarantined(self, tmp_path):
        cache, key = self._put_one(tmp_path)
        other = request_key(CFG, "knn", "snuca", 3)
        path = cache.path_for(key)
        path.rename(cache.path_for(other))
        with pytest.warns(UserWarning, match="key"):
            assert cache.get(other) is None

    def test_corruption_message_names_the_file(self, tmp_path):
        cache, key = self._put_one(tmp_path)
        path = cache.path_for(key)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.warns(UserWarning) as caught:
            cache.get(key)
        assert path.name in str(caught[0].message)


class TestFleetTier:
    """Two-tier reads/writes against a shared fleet directory."""

    def test_miss_falls_through_to_fleet_and_promotes(self, tmp_path):
        fleet = tmp_path / "fleet"
        writer = ResultCache(tmp_path / "w", fleet_dir=fleet)
        reader = ResultCache(tmp_path / "r", fleet_dir=fleet)
        key = request_key(CFG, "md5", "tdnuca", 0)
        writer.put(key, RESULT, meta={})
        assert writer.fleet_stores == 1
        assert reader.get(key) == RESULT
        assert reader.fleet_hits == 1 and reader.misses == 0
        # promoted: the next read is local (byte-identical copy)
        assert reader.path_for(key).is_file()
        assert reader.get(key) == RESULT
        assert reader.hits == 1 and reader.fleet_hits == 1

    def test_fence_rejection_never_reaches_the_shared_tier(self, tmp_path):
        fleet = tmp_path / "fleet"
        cache = ResultCache(tmp_path / "c", fleet_dir=fleet)
        key = request_key(CFG, "md5", "tdnuca", 0)
        cache.put(key, RESULT, meta={}, fence=lambda: False)
        assert cache.fleet_fenced == 1 and cache.fleet_stores == 0
        assert not cache.fleet_path_for(key).is_file()
        # the local tier still holds it (private, non-authoritative)
        assert cache.get(key) == RESULT

    def test_fleet_stats_keys_only_in_fleet_mode(self, tmp_path):
        plain = ResultCache(tmp_path / "plain")
        assert "fleet_hits" not in plain.stats()
        fleeted = ResultCache(tmp_path / "c", fleet_dir=tmp_path / "fleet")
        stats = fleeted.stats()
        for key in ("fleet_hits", "fleet_stores", "fleet_fenced",
                    "fleet_corrupt", "fleet_entries"):
            assert key in stats, key


class TestConcurrentPublishers:
    """N writers racing one ``request_key``: exactly one valid,
    non-torn shared entry, and counters that add up."""

    def _race(self, caches, puts):
        barrier = threading.Barrier(len(puts))

        def run(cache, payload):
            barrier.wait()
            cache.put(*payload)

        threads = [
            threading.Thread(target=run, args=(c, p))
            for c, p in zip(caches, puts)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_same_payload_racers_elect_one_publisher(self, tmp_path):
        fleet = tmp_path / "fleet"
        key = request_key(CFG, "md5", "tdnuca", 0)
        caches = [
            ResultCache(tmp_path / f"c{i}", fleet_dir=fleet)
            for i in range(4)
        ]
        self._race(caches, [(key, RESULT, {}) for _ in caches])
        # exclusive link: exactly one racer's bytes landed, never torn
        assert sum(c.fleet_stores for c in caches) == 1
        assert sum(c.stores for c in caches) == 4
        assert len(list(fleet.glob("*.rcache"))) == 1
        assert not list(fleet.glob("*.corrupt"))
        for c in caches:
            assert c.get(key) == RESULT
        reader = ResultCache(tmp_path / "reader", fleet_dir=fleet)
        assert reader.get(key) == RESULT
        assert reader.fleet_hits == 1 and reader.corrupt == 0

    def test_different_payload_racers_still_one_valid_entry(self, tmp_path):
        """Divergent bytes (a bug upstream — simulation is deterministic)
        still cannot tear the shared tier: one complete entry wins."""
        fleet = tmp_path / "fleet"
        key = request_key(CFG, "md5", "tdnuca", 0)
        a = ResultCache(tmp_path / "a", fleet_dir=fleet)
        b = ResultCache(tmp_path / "b", fleet_dir=fleet)
        result_a = {**RESULT, "makespan_cycles": 111}
        result_b = {**RESULT, "makespan_cycles": 222}
        self._race([a, b], [(key, result_a, {}), (key, result_b, {})])
        assert a.fleet_stores + b.fleet_stores == 1
        assert len(list(fleet.glob("*.rcache"))) == 1
        reader = ResultCache(tmp_path / "reader", fleet_dir=fleet)
        got = reader.get(key)  # valid and whole: one of the two, no CRC trip
        assert got in (result_a, result_b)
        assert reader.corrupt == 0 and reader.fleet_corrupt == 0

    def test_same_root_racers_leave_a_whole_local_entry(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = request_key(CFG, "md5", "tdnuca", 0)
        result_a = {**RESULT, "makespan_cycles": 111}
        result_b = {**RESULT, "makespan_cycles": 222}
        self._race(
            [cache, cache], [(key, result_a, {}), (key, result_b, {})]
        )
        assert cache.stores == 2
        got = cache.get(key)  # atomic replace: last whole write wins
        assert got in (result_a, result_b)
        assert cache.corrupt == 0
