"""Content-addressed result cache: roundtrip, keys, corruption handling."""

from __future__ import annotations

import json

import pytest

from repro.config import scaled_config
from repro.service.cache import (
    CACHE_MAGIC,
    ResultCache,
    request_key,
)

CFG = scaled_config(1 / 2048)
RESULT = {"workload": "md5", "policy": "tdnuca", "makespan_cycles": 123456}


class TestRequestKey:
    def test_deterministic(self):
        a = request_key(CFG, "md5", "tdnuca", 0)
        b = request_key(CFG, "md5", "tdnuca", 0)
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_every_component_changes_the_key(self):
        base = request_key(CFG, "md5", "tdnuca", 0)
        assert request_key(CFG, "knn", "tdnuca", 0) != base
        assert request_key(CFG, "md5", "snuca", 0) != base
        assert request_key(CFG, "md5", "tdnuca", 7) != base
        assert request_key(scaled_config(1 / 512), "md5", "tdnuca", 0) != base


class TestRoundtrip:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = request_key(CFG, "md5", "tdnuca", 0)
        assert cache.get(key) is None
        cache.put(key, RESULT, meta={"workload": "md5"})
        assert cache.get(key) == RESULT
        assert cache.stats() == {
            "entries": 1, "hits": 1, "misses": 1, "stores": 1, "corrupt": 0,
        }

    def test_contains_does_not_touch_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = request_key(CFG, "md5", "tdnuca", 0)
        assert key not in cache
        cache.put(key, RESULT, meta={})
        assert key in cache
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 0

    def test_payload_is_canonical_sorted_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = request_key(CFG, "md5", "tdnuca", 0)
        cache.put(key, RESULT, meta={})
        raw = cache.path_for(key).read_bytes()
        assert raw.startswith(CACHE_MAGIC)
        payload_bytes = raw[len(CACHE_MAGIC) + 8:]
        payload = json.loads(payload_bytes)
        assert payload_bytes == json.dumps(
            payload, sort_keys=True
        ).encode("utf-8")
        assert payload["result"] == RESULT
        assert payload["key"] == key


class TestCorruption:
    def _put_one(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = request_key(CFG, "md5", "tdnuca", 0)
        cache.put(key, RESULT, meta={})
        return cache, key

    def test_bit_flip_quarantines_and_degrades_to_miss(self, tmp_path):
        cache, key = self._put_one(tmp_path)
        path = cache.path_for(key)
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0x40
        path.write_bytes(bytes(raw))
        with pytest.warns(UserWarning, match="corrupt cache entry"):
            assert cache.get(key) is None
        assert not path.exists()
        quarantined = path.with_name(path.name + ".corrupt")
        assert quarantined.exists()
        stats = cache.stats()
        assert stats["corrupt"] == 1
        assert stats["misses"] == 1

    def test_recompute_after_quarantine_repopulates(self, tmp_path):
        cache, key = self._put_one(tmp_path)
        path = cache.path_for(key)
        path.write_bytes(b"garbage not even a header")
        with pytest.warns(UserWarning):
            assert cache.get(key) is None
        cache.put(key, RESULT, meta={})
        assert cache.get(key) == RESULT

    def test_wrong_magic_quarantined(self, tmp_path):
        cache, key = self._put_one(tmp_path)
        path = cache.path_for(key)
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.warns(UserWarning):
            assert cache.get(key) is None

    def test_key_mismatch_quarantined(self, tmp_path):
        cache, key = self._put_one(tmp_path)
        other = request_key(CFG, "knn", "snuca", 3)
        path = cache.path_for(key)
        path.rename(cache.path_for(other))
        with pytest.warns(UserWarning, match="key"):
            assert cache.get(other) is None

    def test_corruption_message_names_the_file(self, tmp_path):
        cache, key = self._put_one(tmp_path)
        path = cache.path_for(key)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.warns(UserWarning) as caught:
            cache.get(key)
        assert path.name in str(caught[0].message)
