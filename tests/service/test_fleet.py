"""Fleet coordination: leases, fenced claims, stealing, shared poison.

Everything here drives :class:`FleetNode` instances directly over one
shared ``tmp_path`` fleet directory — no servers, no subprocesses, tiny
lease timeouts.  The multi-server kill/fence scenarios live in
``test_fleet_chaos.py`` (``-m chaos``) and ``scripts/fleet_smoke.py``.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import failpoints
from repro.service.fleet import (
    DEAD_FACTOR,
    DEFAULT_HOST_LEASE_TIMEOUT,
    FleetNode,
    claim_matches,
    default_host_id,
    fleet_status,
    job_key,
)

SPEC = {"kind": "run", "workload": "md5", "policy": "tdnuca", "scale": 2048}


def node(tmp_path, host, **kw):
    kw.setdefault("lease_timeout", 0.05)
    return FleetNode(tmp_path / "fleet", host_id=host, **kw)


class TestIdentity:
    def test_job_key_is_stable_and_order_insensitive(self):
        a = job_key({"workload": "md5", "scale": 2048})
        b = job_key({"scale": 2048, "workload": "md5"})
        assert a == b
        assert len(a) == 16

    def test_job_key_separates_specs(self):
        assert job_key(SPEC) != job_key({**SPEC, "scale": 512})

    def test_default_host_id_carries_the_pid(self):
        assert default_host_id().endswith(f"-{os.getpid()}")

    def test_host_id_must_be_a_plain_file_name(self, tmp_path):
        with pytest.raises(ValueError):
            node(tmp_path, "a/b")
        with pytest.raises(ValueError):
            node(tmp_path, ".hidden")

    def test_lease_timeout_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            node(tmp_path, "a", lease_timeout=0)


class TestHostLease:
    def test_register_heartbeat_deregister_roundtrip(self, tmp_path):
        n = node(tmp_path, "a")
        n.register()
        lease = json.loads(n.host_path("a").read_text())
        assert lease["host_id"] == "a"
        assert lease["pid"] == os.getpid()
        seq0 = lease["seq"]
        n.heartbeat()
        assert json.loads(n.host_path("a").read_text())["seq"] == seq0 + 1
        n.deregister()
        assert not n.host_path("a").is_file()

    def test_scan_walks_alive_suspect_dead_on_observed_silence(
        self, tmp_path
    ):
        a, b = node(tmp_path, "a"), node(tmp_path, "b")
        a.register()
        b.register()
        # First sighting is alive: we cannot know how long the host was
        # silent before we started watching.
        assert a.scan()["b"] == "alive"
        time.sleep(0.06)
        assert a.scan()["b"] == "suspect"
        time.sleep(0.06)  # past DEAD_FACTOR * lease_timeout of silence
        assert a.scan()["b"] == "dead"
        b.heartbeat()  # seq advance resurrects it
        assert a.scan()["b"] == "alive"

    def test_liveness_ignores_wall_clock_stamps(self, tmp_path):
        """An NTP step (absurd ``stamped_at``) must not affect liveness:
        only seq advances observed on the scanner's monotonic clock do."""
        a, b = node(tmp_path, "a"), node(tmp_path, "b")
        a.register()
        b.register()
        a.scan()
        for _ in range(3):
            b.heartbeat()
            lease = json.loads(b.host_path("b").read_text())
            lease["stamped_at"] = 0.0  # wall clock stepped decades back
            b.host_path("b").write_text(json.dumps(lease))
            time.sleep(0.06)
            assert a.scan()["b"] == "alive"

    def test_host_state_gone_and_self(self, tmp_path):
        a = node(tmp_path, "a")
        a.register()
        assert a.host_state("a") == "alive"
        assert a.host_state("nobody") == "gone"

    def test_dead_factor_and_default_are_sane(self):
        assert DEAD_FACTOR == 2.0
        assert DEFAULT_HOST_LEASE_TIMEOUT > 0


class TestClaims:
    def test_fresh_claim_starts_at_epoch_one(self, tmp_path):
        a = node(tmp_path, "a")
        key = job_key(SPEC)
        handle = a.try_claim(key, SPEC)
        assert handle is not None and handle.epoch == 1
        assert claim_matches(a.root, key, "a", 1)
        assert not claim_matches(a.root, key, "a", 2)
        assert not claim_matches(a.root, key, "b", 1)

    def test_claim_is_idempotent_while_held(self, tmp_path):
        a = node(tmp_path, "a")
        key = job_key(SPEC)
        first = a.try_claim(key, SPEC)
        assert a.try_claim(key, SPEC) is first

    def test_live_owner_blocks_contenders(self, tmp_path):
        a, b = node(tmp_path, "a"), node(tmp_path, "b")
        a.register()
        b.register()
        b.scan()
        key = job_key(SPEC)
        assert a.try_claim(key, SPEC) is not None
        assert b.try_claim(key, SPEC) is None
        assert b.claim_conflicts == 1

    def test_dead_owner_takeover_bumps_epoch_and_death_count(
        self, tmp_path
    ):
        a, b = node(tmp_path, "a"), node(tmp_path, "b")
        key = job_key(SPEC)
        a.register()
        assert a.try_claim(key, SPEC).epoch == 1
        a.host_path("a").unlink()  # the host is gone, lease and all
        handle = b.try_claim(key, SPEC)
        assert handle is not None and handle.epoch == 2
        claim = json.loads(b.claim_path(key).read_text())
        assert claim["host_deaths"] == 1
        assert claim["prev_owner"] == "a"
        # the old owner's handle no longer passes the fence
        assert not claim_matches(b.root, key, "a", 1)
        assert claim_matches(b.root, key, "b", 2)

    def test_reincarnated_host_fences_its_own_stragglers(self, tmp_path):
        """The same host id coming back (crash + restart, pid reused in
        the id) must still bump the epoch so children of the old
        incarnation are fenced."""
        key = job_key(SPEC)
        old = node(tmp_path, "a")
        old.register()
        assert old.try_claim(key, SPEC).epoch == 1
        fresh = node(tmp_path, "a")  # no in-memory held state
        handle = fresh.try_claim(key, SPEC)
        assert handle is not None and handle.epoch == 2
        assert not claim_matches(fresh.root, key, "a", 1)

    def test_release_done_deletes_the_claim(self, tmp_path):
        a = node(tmp_path, "a")
        key = job_key(SPEC)
        handle = a.try_claim(key, SPEC)
        a.release(handle, done=True)
        assert not a.claim_path(key).is_file()
        assert a.held(key) is None

    def test_release_for_requeue_goes_ownerless_same_epoch(self, tmp_path):
        a, b = node(tmp_path, "a"), node(tmp_path, "b")
        key = job_key(SPEC)
        handle = a.try_claim(key, SPEC)
        a.release(handle, done=False, requeue=True)
        claim = json.loads(a.claim_path(key).read_text())
        assert claim["owner"] is None and claim["epoch"] == 1
        assert a.queue_entry_path("a", key).is_file()
        # a released claim is taken without a death mark
        handle_b = b.try_claim(key, SPEC)
        assert handle_b is not None and handle_b.epoch == 2
        assert json.loads(b.claim_path(key).read_text())["host_deaths"] == 0

    def test_fenced_release_is_counted_and_harmless(self, tmp_path):
        a, b = node(tmp_path, "a"), node(tmp_path, "b")
        key = job_key(SPEC)
        stale = a.try_claim(key, SPEC)
        # "a" never registered a lease, so b sees its owner as gone
        taken = b.try_claim(key, SPEC)
        assert taken is not None
        a.release(stale, done=True)  # stale owner wakes up and "finishes"
        assert a.fenced == 1
        # b's claim survives untouched
        assert claim_matches(b.root, key, "b", taken.epoch)

    def test_wedged_epoch_marker_is_walked_after_a_lease_timeout(
        self, tmp_path
    ):
        """A contender that created the epoch marker and died before
        rewriting the claim must not wedge the key forever."""
        a, b = node(tmp_path, "a"), node(tmp_path, "b")
        key = job_key(SPEC)
        a.register()
        a.try_claim(key, SPEC)
        a.host_path("a").unlink()
        # simulate a dead contender that won marker e2 and vanished
        (b.claims_dir / f"{key}.e2").write_bytes(b"ghost")
        assert b.try_claim(key, SPEC) is None  # first sight: wait it out
        time.sleep(0.06)  # a full lease_timeout on b's clock
        handle = b.try_claim(key, SPEC)
        assert handle is not None and handle.epoch == 3

    def test_fleet_poison_blocks_claims(self, tmp_path):
        a, b = node(tmp_path, "a"), node(tmp_path, "b")
        key = job_key(SPEC)
        a.poison(key, {"kind": "fleet-poison-quarantine", "job_key": key})
        assert a.poisoned(key) is not None
        assert b.try_claim(key, SPEC) is None


class TestReclaim:
    def test_dead_owners_claims_are_reclaimed(self, tmp_path):
        a, b = node(tmp_path, "a"), node(tmp_path, "b")
        key = job_key(SPEC)
        a.register()
        a.try_claim(key, SPEC)
        a.enqueue(key, SPEC, job_id="j1")
        a.host_path("a").unlink()
        reclaimed = b.reclaim_dead()
        assert len(reclaimed) == 1
        handle, claim = reclaimed[0]
        assert handle.key == key and handle.epoch == 2
        assert claim["owner"] == "a"
        assert b.reclaims == 1
        # the dead owner's queue entry went with it
        assert not b.queue_entry_path("a", key).is_file()

    def test_own_held_claims_are_not_reclaimed(self, tmp_path):
        a = node(tmp_path, "a")
        a.register()
        a.try_claim(job_key(SPEC), SPEC)
        assert a.reclaim_dead() == []

    def test_live_owner_claims_are_not_reclaimed(self, tmp_path):
        a, b = node(tmp_path, "a"), node(tmp_path, "b")
        a.register()
        b.register()
        b.scan()
        a.try_claim(job_key(SPEC), SPEC)
        assert b.reclaim_dead() == []

    def test_job_killing_too_many_hosts_is_quarantined_fleet_wide(
        self, tmp_path
    ):
        a = node(tmp_path, "a", poison_after=2)
        b = node(tmp_path, "b", poison_after=2)
        key = job_key(SPEC)
        a.register()
        a.try_claim(key, SPEC)
        claim = json.loads(a.claim_path(key).read_text())
        claim["host_deaths"] = 1  # already killed one host before
        a.claim_path(key).write_text(json.dumps(claim))
        a.host_path("a").unlink()
        assert b.reclaim_dead() == []  # quarantined, not resumed
        assert b.poisoned_fleet == 1
        bundle = json.loads(b.poison_path(key).read_text())
        assert bundle["kind"] == "fleet-poison-quarantine"
        assert bundle["host_deaths"] == 2
        assert not b.claim_path(key).is_file()
        assert b.try_claim(key, SPEC) is None


class TestStealing:
    def test_no_steal_from_live_peer_within_margin(self, tmp_path):
        a, b = node(tmp_path, "a"), node(tmp_path, "b")
        a.register()
        b.register()
        b.scan()
        a.enqueue(job_key(SPEC), SPEC, job_id="j1")
        assert b.steal(own_depth=0) == []

    def test_steal_from_loaded_live_peer_is_bounded(self, tmp_path):
        a = node(tmp_path, "a", steal_margin=1)
        b = node(tmp_path, "b", steal_margin=1)
        a.register()
        b.register()
        b.scan()
        specs = [{**SPEC, "scale": s} for s in (128, 256, 512)]
        for i, spec in enumerate(specs):
            a.enqueue(job_key(spec), spec, job_id=f"j{i}")
        stolen = b.steal(own_depth=0, limit=1)
        assert len(stolen) == 1
        handle, entry = stolen[0]
        assert entry["host"] == "a"
        assert b.steals == 1
        # the stolen entry is gone; the rest of the shard remains
        assert sum(1 for _ in (b.queue_root / "a").glob("*.json")) == 2
        assert claim_matches(b.root, handle.key, "b", handle.epoch)

    def test_dead_peer_shard_is_always_stealable(self, tmp_path):
        a, b = node(tmp_path, "a"), node(tmp_path, "b")
        a.register()
        a.enqueue(job_key(SPEC), SPEC, job_id="j1")
        a.host_path("a").unlink()
        stolen = b.steal(own_depth=5)  # own backlog does not matter
        assert len(stolen) == 1

    def test_raced_steal_is_a_noop_not_a_double_run(self, tmp_path):
        a, b = node(tmp_path, "a"), node(tmp_path, "b")
        a.register()
        key = job_key(SPEC)
        a.enqueue(key, SPEC, job_id="j1")
        a.try_claim(key, SPEC)  # the owner got to it first
        a.host_path("a").unlink()
        # b sees the entry in a dead shard, but the claim is contested:
        # takeover wins (dead owner) — that is still exactly one runner.
        stolen = b.steal(own_depth=0)
        assert len(stolen) == 1
        assert json.loads(b.claim_path(key).read_text())["epoch"] == 2


class TestStatusAndInspection:
    def test_status_gauges_shape(self, tmp_path):
        a = node(tmp_path, "a")
        a.register()
        status = a.status()
        for key in (
            "host_id", "lease_timeout", "hosts", "claims_held",
            "claims_won", "claim_conflicts", "steals", "steal_races",
            "reclaims", "releases", "fenced_writes", "poisoned_fleet",
        ):
            assert key in status, key
        assert status["hosts"]["alive"] >= 1

    def test_fleet_status_reads_a_dead_fleet_from_disk(self, tmp_path):
        a, b = node(tmp_path, "a"), node(tmp_path, "b")
        a.register()
        b.register()
        key = job_key(SPEC)
        a.try_claim(key, SPEC)
        b.enqueue(job_key({**SPEC, "scale": 64}), {**SPEC, "scale": 64},
                  job_id="j2")
        status = fleet_status(tmp_path / "fleet")
        assert {h["host_id"] for h in status["hosts"]} == {"a", "b"}
        assert status["claims"][0]["owner"] == "a"
        assert status["queued"]["b"] == 1
        assert status["results"] == 0 and status["snapshots"] == 0

    def test_fleet_status_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            fleet_status(tmp_path / "nope")


class TestFailpointSites:
    def test_fleet_sites_are_registered(self):
        for site in (
            "fleet.claim.stall", "fleet.lease.skew",
            "fleet.publish.torn", "fleet.steal.race",
        ):
            assert site in failpoints.SITES, site

    def test_claim_stall_site_fires_inside_the_claim_window(self, tmp_path):
        failpoints.configure("fleet.claim.stall=1@action:raise")
        try:
            a = node(tmp_path, "a")
            with pytest.raises(failpoints.FailpointError):
                a.try_claim(job_key(SPEC), SPEC)
        finally:
            failpoints.reset()
