"""Fleet chaos suite: multi-host handoff, ghosts, torn shared publishes.

Run with ``pytest -m chaos``.  Two :class:`JobQueue` instances (one
fleet-joined host each) share one fleet directory inside a single event
loop — a miniature fleet without subprocesses, so each scenario stays
deterministic and fast.  The real multi-process story (``kill -9`` of a
serving host, lease-skew fencing of a live-but-stalled owner) is
``scripts/fleet_smoke.py``'s job.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro import failpoints
from repro.api import Session
from repro.config import scaled_config
from repro.service.cache import ResultCache, request_key
from repro.service.fleet import FleetNode, job_key
from repro.service.queue import JobQueue, RunSpec

pytestmark = pytest.mark.chaos

SCALE = 2048


@pytest.fixture(autouse=True)
def _clean_failpoints():
    failpoints.reset()
    yield
    failpoints.reset()


@pytest.fixture(scope="module")
def reference():
    return (
        Session(scaled_config(1 / SCALE), seed=0)
        .run("md5", "tdnuca")
        .stats_dict()
    )


def fleet_queue(tmp_path, host, *, lease_timeout=0.4, **kw):
    fleet = FleetNode(
        tmp_path / "fleet", host_id=host, lease_timeout=lease_timeout
    )
    cache = ResultCache(
        tmp_path / f"cache-{host}", fleet_dir=fleet.results_dir
    )
    kw.setdefault("workers", 1)
    kw.setdefault("backoff", 0.0)
    return JobQueue(
        spool_dir=tmp_path / "fleet" / "spool",
        cache=cache,
        fleet=fleet,
        **kw,
    )


async def _wait(predicate, what, timeout=120.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {what}"
        await asyncio.sleep(0.02)


async def _settled(job, timeout=120.0):
    await _wait(
        lambda: job.state in ("done", "failed", "preempted"),
        f"job {job.id} to settle",
        timeout,
    )
    return job


def _same(a, b):
    return json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_duplicate_submit_to_a_peer_is_a_shared_store_hit(
    tmp_path, reference
):
    async def go():
        q1 = fleet_queue(tmp_path, "h1")
        q2 = fleet_queue(tmp_path, "h2")
        await q1.start()
        await q2.start()
        try:
            j1 = q1.submit(RunSpec("md5", "tdnuca", scale=SCALE))
            await _settled(j1)
            j2 = q2.submit(RunSpec("md5", "tdnuca", scale=SCALE))
            await _settled(j2)
            return j1, j2, q1, q2
        finally:
            await q1.drain(grace=2.0)
            await q2.drain(grace=2.0)

    j1, j2, q1, q2 = asyncio.run(go())
    assert j1.state == "done" and j1.simulated == 1
    assert _same(j1.result, reference)
    # The peer never simulates: the shared tier answers.
    assert j2.state == "done", j2.error
    assert j2.simulated == 0 and j2.cache_hits == 1
    assert _same(j2.result, j1.result)
    assert q2.simulations_run == 0
    assert q2.cache.fleet_hits >= 1
    # the publish itself happened in h1's worker child; the shared tier
    # holds exactly the one entry it linked in
    assert q1.cache.stats()["fleet_entries"] == 1


def test_drained_hosts_job_is_stolen_and_finished_by_a_peer(
    tmp_path, reference
):
    # Hold every attempt at its start so the first host is mid-attempt
    # when it drains; the peer must then steal the requeued entry.
    failpoints.configure("queue.attempt.slow=*@param:1.0")

    async def go():
        q1 = fleet_queue(tmp_path, "h1", lease_timeout=0.2)
        q2 = fleet_queue(tmp_path, "h2", lease_timeout=0.2)
        await q1.start()
        await q2.start()
        try:
            job = q1.submit(RunSpec("md5", "tdnuca", scale=SCALE))
            await _wait(
                lambda: job.fleet_claim is not None,
                "h1 to claim its job",
                timeout=10.0,
            )
            await q1.drain(grace=0.3)  # preempts the held attempt
            assert job.state == "preempted", job.state
            # h1 is gone; its released claim + requeued entry flow to h2.
            await _wait(
                lambda: any(
                    j.origin == "steal" and j.state == "done"
                    for j in q2.jobs.values()
                ),
                "h2 to steal and finish the ghost",
            )
            return job, q2
        finally:
            await q2.drain(grace=2.0)

    _, q2 = asyncio.run(go())
    ghost = next(j for j in q2.jobs.values() if j.origin == "steal")
    assert q2.adopted == 1
    assert q2.fleet.steals == 1
    assert _same(ghost.result, reference)
    # The settled claim is gone; the shared store answers the key.
    key = job_key(RunSpec("md5", "tdnuca", scale=SCALE).to_dict())
    assert not (q2.fleet.claim_path(key)).is_file()
    assert q2.cache.fleet_path_for(
        request_key(scaled_config(1 / SCALE), "md5", "tdnuca", 0)
    ).is_file()


def test_dead_hosts_claim_is_reclaimed_and_run_as_ghost(
    tmp_path, reference
):
    spec = RunSpec("md5", "tdnuca", scale=SCALE)
    key = job_key(spec.to_dict())
    # A host that claimed the job and then went silent forever — the
    # in-process stand-in for kill -9 (the smoke does it for real).
    dead = FleetNode(tmp_path / "fleet", host_id="dead", lease_timeout=0.2)
    dead.register()
    assert dead.try_claim(key, spec.to_dict()) is not None

    async def go():
        q2 = fleet_queue(tmp_path, "h2", lease_timeout=0.2)
        await q2.start()
        try:
            await _wait(
                lambda: any(
                    j.origin == "reclaim" and j.state == "done"
                    for j in q2.jobs.values()
                ),
                "h2 to reclaim the dead host's claim",
            )
            return q2
        finally:
            await q2.drain(grace=2.0)

    q2 = asyncio.run(go())
    ghost = next(j for j in q2.jobs.values() if j.origin == "reclaim")
    assert q2.fleet.reclaims == 1 and q2.adopted == 1
    assert _same(ghost.result, reference)
    assert ghost.fleet_claim is None  # released on settle
    assert not q2.fleet.claim_path(key).is_file()


def test_torn_shared_publish_is_quarantined_fleet_wide_and_republished(
    tmp_path,
):
    fleet_results = tmp_path / "fleet" / "results"
    cfg = scaled_config(1 / SCALE)
    key = request_key(cfg, "md5", "tdnuca", 0)
    result = {"workload": "md5", "makespan_cycles": 42}

    failpoints.configure("fleet.publish.torn=1")
    c1 = ResultCache(tmp_path / "c1", fleet_dir=fleet_results)
    c1.put(key, result, meta={})
    failpoints.reset()
    # c1's local tier is clean; the shared entry is torn.
    assert c1.get(key) == result

    c2 = ResultCache(tmp_path / "c2", fleet_dir=fleet_results)
    with pytest.warns(UserWarning, match="corrupt fleet cache entry"):
        assert c2.get(key) is None  # quarantined, reported as a miss
    assert c2.fleet_corrupt == 1
    assert list(fleet_results.glob("*.corrupt")), (
        "torn shared entry must be kept for forensics"
    )
    # The publisher slot reopened: the recompute republishes clean bytes
    # that every other host can now read.
    c2.put(key, result, meta={})
    assert c2.fleet_stores == 1
    c3 = ResultCache(tmp_path / "c3", fleet_dir=fleet_results)
    assert c3.get(key) == result
    assert c3.fleet_hits == 1
