"""Job queue behaviour: retries, breaker, eviction, drain, spool resume.

Everything runs through ``asyncio.run`` inside plain sync tests (the
repo's pytest has no asyncio plugin).  Slow-path behaviours (retry
classification, saturation) monkeypatch the worker attempt so no real
simulation runs; the byte-identity properties (eviction, drain+resume)
use real tiny simulations because that is the property under test.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.api import Session
from repro.config import scaled_config
from repro.service.cache import ResultCache, request_key
from repro.service.envelope import ServiceError
from repro.service.queue import (
    CircuitBreaker,
    EventBuffer,
    JobQueue,
    RunSpec,
    SweepSpec,
    spec_from_dict,
)

SCALE = 2048
CFG = scaled_config(1 / SCALE)


def run_async(coro):
    return asyncio.run(coro)


async def wait_settled(job, timeout=60.0):
    deadline = time.monotonic() + timeout
    while job.state not in ("done", "failed", "preempted"):
        assert time.monotonic() < deadline, f"job stuck in {job.state!r}"
        await asyncio.sleep(0.01)
    return job


def make_queue(tmp_path, **kw):
    kw.setdefault("workers", 1)
    kw.setdefault("spool_dir", tmp_path / "spool")
    kw.setdefault("cache", ResultCache(tmp_path / "cache"))
    return JobQueue(**kw)


def reference_result(workload="md5", policy="tdnuca", seed=0):
    rr = Session(CFG, seed=seed).run(workload, policy)
    return rr.stats_dict()


class TestSpecs:
    def test_run_spec_round_trip(self):
        spec = spec_from_dict(
            {"kind": "run", "workload": "md5", "policy": "tdnuca",
             "scale": SCALE}
        )
        assert isinstance(spec, RunSpec)
        assert spec.to_dict()["workload"] == "md5"
        assert spec.cells() == [("md5", "tdnuca")]

    def test_sweep_spec_cells(self):
        spec = spec_from_dict(
            {"kind": "sweep", "workloads": ["md5"],
             "policies": ["snuca", "tdnuca"], "scale": SCALE}
        )
        assert isinstance(spec, SweepSpec)
        assert spec.cells() == [("md5", "snuca"), ("md5", "tdnuca")]

    @pytest.mark.parametrize("raw, needle", [
        ({"kind": "run", "workload": "nope", "policy": "tdnuca"}, "workload"),
        ({"kind": "run", "workload": "md5", "policy": "nope"}, "policy"),
        ({"kind": "run", "workload": "md5"}, "policy"),
        ({"kind": "run", "workload": "md5", "policy": "tdnuca",
          "scale": 0}, "scale"),
        ({"kind": "sweep", "workloads": [], "policies": ["snuca"]},
         "at least one"),
        ({"kind": "teapot"}, "kind"),
        ("not a dict", "JSON object"),
    ])
    def test_invalid_specs_rejected_with_named_cause(self, raw, needle):
        with pytest.raises(ValueError, match=needle):
            spec_from_dict(raw)

    def test_bad_fault_spec_rejected_at_submission(self):
        with pytest.raises(ValueError):
            spec_from_dict(
                {"kind": "run", "workload": "md5", "policy": "tdnuca",
                 "scale": SCALE, "faults": "utter nonsense"}
            )


class TestEventBuffer:
    def test_cursor_reads_are_incremental(self):
        buf = EventBuffer(capacity=10)
        buf.append({"n": 1})
        buf.append({"n": 2})
        items, cur = buf.since(0)
        assert [i["n"] for i in items] == [1, 2]
        buf.append({"n": 3})
        items, cur = buf.since(cur)
        assert [i["n"] for i in items] == [3]

    def test_overflow_drops_oldest_and_counts(self):
        buf = EventBuffer(capacity=3)
        for n in range(7):
            buf.append({"n": n})
        items, _ = buf.since(0)
        assert [i["n"] for i in items] == [4, 5, 6]
        assert buf.dropped == 4


class TestCircuitBreaker:
    def test_opens_at_depth_and_closes_at_low_water(self):
        br = CircuitBreaker(max_pending=4)
        br.admit(3)
        with pytest.raises(ServiceError) as exc:
            br.admit(4)
        assert exc.value.type == "saturated"
        assert exc.value.retry_after is not None
        assert br.state == "open"
        # Still open above the low-water mark (hysteresis).
        with pytest.raises(ServiceError):
            br.admit(3)
        br.admit(2)  # back at low water: closed again
        assert br.state == "closed"
        assert br.trips == 1
        assert br.shed == 2


class TestRetries:
    def test_transient_failure_retries_then_succeeds(self, tmp_path):
        queue = make_queue(tmp_path, retries=2, backoff=0.0)
        calls = {"n": 0}

        def flaky(job, budget):
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("spurious infrastructure burp")
            job.partial[job.spec.label] = {"makespan_cycles": 1}
            job.cells_done += 1

        queue._attempt = flaky

        async def go():
            await queue.start()
            job = queue.submit(RunSpec("md5", "tdnuca", scale=SCALE))
            await wait_settled(job)
            return job

        job = run_async(go())
        assert job.state == "done"
        assert job.attempts == 3
        kinds = [e["kind"] for e in job.events.since(0)[0]]
        assert kinds.count("retry") == 2

    def test_permanent_error_fails_immediately_with_typed_envelope(
        self, tmp_path
    ):
        queue = make_queue(tmp_path, retries=5, backoff=0.0)

        def broken(job, budget):
            raise ValueError("workload exploded deterministically")

        queue._attempt = broken

        async def go():
            await queue.start()
            job = queue.submit(RunSpec("md5", "tdnuca", scale=SCALE))
            await wait_settled(job)
            return job

        job = run_async(go())
        assert job.state == "failed"
        assert job.attempts == 1  # no retry for a permanent error
        assert job.error["type"] == "job-failed"
        assert "workload exploded" in job.error["message"]
        assert job.error["retryable"] is False

    def test_retries_exhausted_fails_typed(self, tmp_path):
        queue = make_queue(tmp_path, retries=1, backoff=0.0)

        def always_down(job, budget):
            raise OSError("disk on fire")

        queue._attempt = always_down

        async def go():
            await queue.start()
            job = queue.submit(RunSpec("md5", "tdnuca", scale=SCALE))
            await wait_settled(job)
            return job

        job = run_async(go())
        assert job.state == "failed"
        assert job.attempts == 2
        assert job.error["type"] == "job-failed"


class TestSaturation:
    def test_breaker_sheds_when_queue_is_full(self, tmp_path):
        queue = make_queue(tmp_path, max_pending=2)

        def stuck(job, budget):
            time.sleep(1.0)

        queue._attempt = stuck

        async def go():
            await queue.start()
            queue.submit(RunSpec("md5", "tdnuca", scale=SCALE))
            queue.submit(RunSpec("md5", "snuca", scale=SCALE))
            with pytest.raises(ServiceError) as exc:
                queue.submit(RunSpec("md5", "rnuca", scale=SCALE))
            assert exc.value.type == "saturated"
            assert exc.value.status == 503
            assert exc.value.retryable
            assert exc.value.retry_after > 0
            for task in queue._tasks:
                task.cancel()
            queue._pool.shutdown(wait=False)

        run_async(go())
        assert queue.stats()["breaker"]["trips"] == 1


class TestCacheIntegration:
    def test_duplicate_submission_is_answered_from_cache(self, tmp_path):
        queue = make_queue(tmp_path)

        async def go():
            await queue.start()
            first = queue.submit(RunSpec("md5", "tdnuca", scale=SCALE))
            await wait_settled(first)
            second = queue.submit(RunSpec("md5", "tdnuca", scale=SCALE))
            return first, second

        first, second = run_async(go())
        assert first.state == "done"
        assert first.simulated == 1 and first.cache_hits == 0
        # The duplicate settles synchronously inside submit().
        assert second.state == "done"
        assert second.simulated == 0 and second.cache_hits == 1
        assert second.cache_hit
        assert queue.simulations_run == 1
        assert second.result == first.result

    def test_cached_result_is_byte_identical_to_plain_run(self, tmp_path):
        queue = make_queue(tmp_path)

        async def go():
            await queue.start()
            job = queue.submit(RunSpec("md5", "tdnuca", scale=SCALE))
            await wait_settled(job)
            return job

        job = run_async(go())
        assert json.dumps(job.result, sort_keys=True) == json.dumps(
            reference_result(), sort_keys=True
        )

    def test_corrupt_cache_entry_recomputes(self, tmp_path):
        queue = make_queue(tmp_path)
        key = request_key(CFG, "md5", "tdnuca", 0)

        async def go(expect_hit):
            await queue.start()
            job = queue.submit(RunSpec("md5", "tdnuca", scale=SCALE))
            await wait_settled(job)
            assert job.state == "done"
            assert (job.cache_hits == 1) is expect_hit
            return job

        run_async(go(False))
        path = queue.cache.path_for(key)
        raw = bytearray(path.read_bytes())
        raw[-5] ^= 0x10
        path.write_bytes(bytes(raw))
        with pytest.warns(UserWarning, match="corrupt cache entry"):
            job = run_async(go(False))
        assert job.simulated == 1
        assert queue.cache.corrupt == 1
        assert path.with_name(path.name + ".corrupt").exists()
        assert json.dumps(job.result, sort_keys=True) == json.dumps(
            reference_result(), sort_keys=True
        )

    def test_sweep_job_caches_per_cell(self, tmp_path):
        queue = make_queue(tmp_path)

        async def go():
            await queue.start()
            one = queue.submit(RunSpec("md5", "tdnuca", scale=SCALE))
            await wait_settled(one)
            sweep = queue.submit(SweepSpec(
                ("md5",), ("snuca", "tdnuca"), scale=SCALE
            ))
            await wait_settled(sweep)
            return sweep

        sweep = run_async(go())
        assert sweep.state == "done"
        assert sweep.cache_hits == 1  # the tdnuca cell came from the run
        assert sweep.simulated == 1  # only snuca was simulated
        assert set(sweep.result["runs"]) == {"md5/snuca", "md5/tdnuca"}
        assert sweep.result["schema_version"] >= 4


class TestEvictionAndDrain:
    def test_eviction_requeues_and_result_stays_byte_identical(self, tmp_path):
        # 0.5s slices: each process-isolated attempt pays ~0.4s of spawn
        # and import before simulating, so shorter slices would spend the
        # test respawning instead of progressing.
        queue = make_queue(tmp_path, evict_after=0.5)

        async def go():
            await queue.start()
            job = queue.submit(RunSpec("lu", "tdnuca", scale=512))
            await wait_settled(job, timeout=120)
            return job

        job = run_async(go())
        assert job.state == "done"
        assert job.evictions >= 1
        assert job.resumed_from_task is not None
        rr = Session(scaled_config(1 / 512)).run("lu", "tdnuca")
        assert json.dumps(job.result, sort_keys=True) == json.dumps(
            rr.stats_dict(), sort_keys=True
        )
        # The spool snapshot is consumed on success.
        assert not list(queue.spool.glob("*.snap"))

    def test_drain_preempts_to_snapshot_and_resume_matches(self, tmp_path):
        spool = tmp_path / "spool"
        cache_dir = tmp_path / "cache"

        async def interrupted():
            queue = make_queue(
                tmp_path, spool_dir=spool, cache=ResultCache(cache_dir),
                checkpoint_every=25,
            )
            await queue.start()
            job = queue.submit(RunSpec("lu", "tdnuca", scale=512))
            await asyncio.sleep(0.3)
            stopped = await queue.drain(grace=30.0)
            return queue, job, stopped

        queue, job, stopped = run_async(interrupted())
        assert stopped == 1
        assert job.state == "preempted"
        assert queue.draining
        snaps = list(spool.glob("*.snap"))
        assert len(snaps) == 1
        with pytest.raises(ServiceError) as exc:
            queue.submit(RunSpec("md5", "tdnuca", scale=SCALE))
        assert exc.value.type == "draining"

        async def resumed():
            queue2 = make_queue(
                tmp_path, spool_dir=spool, cache=ResultCache(cache_dir)
            )
            await queue2.start()
            job2 = queue2.submit(RunSpec("lu", "tdnuca", scale=512))
            await wait_settled(job2, timeout=120)
            return job2

        job2 = run_async(resumed())
        assert job2.state == "done"
        assert job2.resumed_from_task is not None
        rr = Session(scaled_config(1 / 512)).run("lu", "tdnuca")
        assert json.dumps(job2.result, sort_keys=True) == json.dumps(
            rr.stats_dict(), sort_keys=True
        )


class TestTimeout:
    def test_budget_exhaustion_fails_typed_but_keeps_snapshot(self, tmp_path):
        queue = make_queue(tmp_path, timeout=0.1, retries=0)

        async def go():
            await queue.start()
            job = queue.submit(RunSpec("lu", "tdnuca", scale=512))
            await wait_settled(job, timeout=120)
            return job

        job = run_async(go())
        assert job.state == "failed"
        assert job.error["type"] == "timeout"
        assert job.error["retryable"] is True
        assert "resume" in job.error["message"]
        # The snapshot survives so a resubmission resumes, not restarts.
        assert list(queue.spool.glob("*.snap"))
