"""HTTP server: envelopes, routes, NDJSON streaming, drain behaviour.

The server runs on a background-thread event loop; tests talk to it over
real sockets through :class:`ServiceClient` (or raw ``http.client`` when
the point is a malformed request the client would never send).
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

import pytest

import repro
from repro.service.client import ServiceClient
from repro.service.envelope import ServiceError
from repro.service.server import ServiceServer

SCALE = 2048


class RunningServer:
    """A ServiceServer on its own event-loop thread."""

    def __init__(self, tmp_path, **kw):
        kw.setdefault("cache_dir", tmp_path / "cache")
        kw.setdefault("spool_dir", tmp_path / "spool")
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        self.server = ServiceServer(port=0, **kw)
        self.call(self.server.start())

    def call(self, coro, timeout=60.0):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(timeout)

    @property
    def port(self):
        return self.server.port

    def stop(self):
        try:
            self.call(self.server.shutdown(), timeout=60.0)
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self.thread.join(5.0)

    def raw(self, method, path, body=None, headers=None):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=10)
        try:
            conn.request(method, path, body=body, headers=headers or {})
            resp = conn.getresponse()
            return resp.status, dict(resp.getheaders()), resp.read()
        finally:
            conn.close()


@pytest.fixture
def served(tmp_path):
    rs = RunningServer(tmp_path)
    try:
        yield rs
    finally:
        rs.stop()


class TestEnvelopes:
    def test_health_carries_package_version(self, served):
        status, _, raw = served.raw("GET", "/v1/health")
        assert status == 200
        envelope = json.loads(raw)
        assert envelope["ok"] is True
        assert envelope["version"] == repro.__version__
        assert envelope["data"]["status"] == "ok"
        assert envelope["data"]["queue"]["breaker"]["state"] == "closed"

    def test_unknown_route_is_typed_404(self, served):
        status, _, raw = served.raw("GET", "/v1/nope")
        envelope = json.loads(raw)
        assert status == 404
        assert envelope["ok"] is False
        assert envelope["version"] == repro.__version__
        assert envelope["error"]["type"] == "not-found"
        assert "Traceback" not in raw.decode()

    def test_wrong_method_is_405(self, served):
        status, _, raw = served.raw("DELETE", "/v1/run")
        assert status == 405
        assert json.loads(raw)["error"]["type"] == "method-not-allowed"

    def test_garbage_body_is_typed_400(self, served):
        status, _, raw = served.raw(
            "POST", "/v1/run", body=b"{not json",
            headers={"Content-Length": "9"},
        )
        envelope = json.loads(raw)
        assert status == 400
        assert envelope["error"]["type"] == "invalid-request"
        assert envelope["error"]["retryable"] is False

    def test_unknown_workload_is_typed_400_naming_it(self, served):
        client = ServiceClient(port=served.port, retries=0)
        with pytest.raises(ServiceError) as exc:
            client.submit_run(workload="fortnite", policy="tdnuca",
                              scale=SCALE)
        assert exc.value.type == "invalid-request"
        assert "fortnite" in exc.value.message

    def test_unknown_job_id_is_404(self, served):
        client = ServiceClient(port=served.port, retries=0)
        with pytest.raises(ServiceError) as exc:
            client.job("deadbeef")
        assert exc.value.type == "not-found"
        assert "deadbeef" in exc.value.message


class TestRunLifecycle:
    def test_submit_wait_result_then_cache_hit(self, served):
        client = ServiceClient(port=served.port)
        job = client.submit_run(workload="md5", policy="tdnuca", scale=SCALE)
        assert job["state"] in ("queued", "running", "done")
        final = client.wait(job["id"])
        assert final["simulated"] == 1
        data = client.result(job["id"])
        assert data["result"]["workload"] == "md5"
        assert data["result"]["makespan_cycles"] > 0

        dup = client.submit_run(workload="md5", policy="tdnuca", scale=SCALE)
        assert dup["state"] == "done"  # settled synchronously from cache
        assert dup["simulated"] == 0 and dup["cache_hits"] == 1
        dup_data = client.result(dup["id"])
        assert json.dumps(dup_data["result"], sort_keys=True) == json.dumps(
            data["result"], sort_keys=True
        )
        health = client.health()
        assert health["queue"]["simulations_run"] == 1
        assert health["cache"]["hits"] >= 1

    def test_result_before_done_is_404(self, served):
        client = ServiceClient(port=served.port, retries=0)
        job = client.submit_run(workload="knn", policy="snuca", scale=SCALE)
        try:
            client.result(job["id"])
        except ServiceError as exc:
            assert exc.type == "not-found"
            assert job["id"] in exc.message
        # (If the run finished between submit and poll, the call simply
        # succeeds — both outcomes are correct; the type check above only
        # runs when it was still in flight.)
        client.wait(job["id"])

    def test_sweep_endpoint(self, served):
        client = ServiceClient(port=served.port)
        job = client.submit_sweep(
            workloads=["md5"], policies=["snuca", "tdnuca"], scale=SCALE
        )
        final = client.wait(job["id"])
        assert final["cells_total"] == 2
        data = client.result(job["id"])
        assert set(data["result"]["runs"]) == {"md5/snuca", "md5/tdnuca"}

    def test_events_stream_hello_then_lifecycle(self, served):
        client = ServiceClient(port=served.port)
        job = client.submit_run(workload="md5", policy="tdnuca", scale=SCALE)
        events = list(client.iter_events(job["id"]))
        hello, rest = events[0], events[1:]
        assert hello["ok"] is True
        assert hello["version"] == repro.__version__
        assert hello["data"]["job"] == job["id"]
        kinds = [e.get("kind") for e in rest]
        assert kinds[0] == "queued"
        assert kinds[-1] == "done"
        assert "attempt" in kinds
        assert "cell_done" in kinds
        # Observer events from inside the simulation made it out too.
        assert any(k not in ("queued", "attempt", "cell_done", "done")
                   for k in kinds)


class TestDrain:
    def test_draining_server_sheds_submissions_with_503(self, tmp_path):
        rs = RunningServer(tmp_path)
        try:
            client = ServiceClient(port=rs.port, retries=0)
            rs.call(rs.server.shutdown())
            assert rs.server.queue.draining
            # After shutdown the queue sheds with a typed "draining" 503;
            # once the socket is fully closed the client reports a typed
            # connection failure instead.  Both are typed, never a trace.
            with pytest.raises(ServiceError) as exc:
                client.submit_run(workload="md5", policy="tdnuca",
                                  scale=SCALE)
            assert exc.value.type in ("draining", "internal")
        finally:
            rs.stop()


class TestClientRetry:
    def test_client_retries_connection_errors_then_gives_up_typed(self):
        # Nothing listens on this port; the client must fail with a typed
        # error naming the endpoint, not a raw ConnectionRefusedError.
        client = ServiceClient(port=1, retries=1, backoff=0.0, timeout=2.0)
        with pytest.raises(ServiceError) as exc:
            client.health()
        assert exc.value.type == "internal"
        assert ":1" in exc.value.message

    def test_client_honours_retry_after_then_succeeds(self, served):
        # A breaker stand-in that sheds the first two submissions with a
        # Retry-After hint, then admits: the client must back off and win.
        queue = served.server.queue
        real = queue.breaker
        calls = {"n": 0}

        class SheddingTwice:
            def admit(self, depth):
                calls["n"] += 1
                if calls["n"] <= 2:
                    raise ServiceError(
                        "saturated", "shed by test breaker",
                        retry_after=0.05,
                    )

        queue.breaker = SheddingTwice()
        try:
            client = ServiceClient(port=served.port, retries=5, backoff=0.05)
            job = client.submit_run(workload="md5", policy="tdnuca",
                                    scale=SCALE)
            assert calls["n"] == 3
            assert client.wait(job["id"])["state"] == "done"
        finally:
            queue.breaker = real


class TestClientConnectionRetry:
    """Connection-level failures are retryable, not terminal (a fleet
    host restarting must degrade into a delay, not an error)."""

    @staticmethod
    def _dead_port():
        import socket

        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            return s.getsockname()[1]  # closed again: refuses connections

    def test_connection_refused_retries_until_budget(self):
        client = ServiceClient(
            "127.0.0.1", self._dead_port(), retries=2, backoff=0.0
        )
        with pytest.raises(ServiceError) as err:
            client.health()
        assert err.value.type == "internal"
        assert "3 attempts" in str(err.value)

    def test_refused_primary_fails_over_to_a_live_peer(self, served):
        client = ServiceClient(
            "127.0.0.1", self._dead_port(), retries=3, backoff=0.0,
            failover=[("127.0.0.1", served.port)],
        )
        assert client.health()["status"] == "ok"
        assert client.port == served.port  # rotated and stayed

    def test_decorrelated_jitter_is_bounded_and_growing(self):
        client = ServiceClient(jitter_seed=7, retries=1, backoff=0.2)
        delay = None
        seen = []
        for _ in range(50):
            delay = client._next_delay(delay)
            seen.append(delay)
            assert 0.2 <= delay <= 30.0
        # the random walk actually explores upwards of the floor
        assert max(seen) > 0.2

    def test_zero_backoff_means_zero_delay(self):
        client = ServiceClient(backoff=0.0)
        assert client._next_delay(None) == 0.0
