"""Crash-isolated worker pool: deaths, leases, poison, degradation.

Every test injects faults through the deterministic failpoint registry
(forwarded to the spawned worker via the attempt payload) and uses the
smallest real simulation (md5 @ scale 2048, ~130 tasks) because crash ->
resume byte-identity is the property under test.

Determinism note: failpoint hit counters are per-process and reset when
a worker respawns, so cross-attempt injection uses context filters —
``@attempt:1`` fires in the first attempt's worker only, and the retry
(attempt 2) runs clean.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro import failpoints
from repro.api import Session
from repro.config import scaled_config
from repro.service.cache import ResultCache
from repro.service.envelope import ServiceError
from repro.service.queue import JobQueue, RunSpec

SCALE = 2048
CFG = scaled_config(1 / SCALE)


@pytest.fixture(autouse=True)
def _clean_failpoints():
    failpoints.reset()
    yield
    failpoints.reset()


def run_async(coro):
    return asyncio.run(coro)


async def wait_settled(job, timeout=120.0):
    deadline = time.monotonic() + timeout
    while job.state not in ("done", "failed", "preempted"):
        assert time.monotonic() < deadline, f"job stuck in {job.state!r}"
        await asyncio.sleep(0.01)
    return job


def make_queue(tmp_path, **kw):
    kw.setdefault("workers", 1)
    kw.setdefault("spool_dir", tmp_path / "spool")
    kw.setdefault("cache", ResultCache(tmp_path / "cache"))
    kw.setdefault("backoff", 0.0)
    return JobQueue(**kw)


def submit_and_settle(queue, spec, timeout=120.0):
    async def go():
        await queue.start()
        job = queue.submit(spec)
        await wait_settled(job, timeout=timeout)
        await queue.drain(grace=0.5)
        return job

    return run_async(go())


def reference_result():
    return Session(CFG).run("md5", "tdnuca").stats_dict()


class TestCrashRecovery:
    def test_kill9_mid_job_resumes_byte_identically(self, tmp_path):
        # SIGKILL the worker at the first task boundary >= 50, first
        # attempt only.  checkpoint_every=25 guarantees a periodic
        # snapshot exists below the crash point, so the retry resumes.
        failpoints.configure("worker.crash=*@attempt:1@task_ge:50")
        queue = make_queue(tmp_path, checkpoint_every=25)
        job = submit_and_settle(queue, RunSpec("md5", "tdnuca", scale=SCALE))
        assert job.state == "done"
        assert job.worker_deaths == 1
        assert job.attempts == 2
        assert job.resumed_from_task is not None
        assert json.dumps(job.result, sort_keys=True) == json.dumps(
            reference_result(), sort_keys=True
        )
        kinds = [e["kind"] for e in job.events.since(0)[0]]
        assert "worker_died" in kinds and "retry" in kinds
        stats = queue.stats()
        assert stats["worker_deaths"] == 1
        assert stats["pool"]["deaths"] == 1
        assert stats["pool"]["restarts"] == 1
        # The SIGKILL is visible as the worker's terminating signal.
        died = next(e for e in job.events.since(0)[0]
                    if e["kind"] == "worker_died")
        assert died["signal"] == 9
        assert died["reason"] == "crashed"
        # Snapshot consumed on success.
        assert not list(queue.spool.glob("*.snap"))

    def test_startup_crash_is_requeued(self, tmp_path):
        # Exit 99 before simulating anything — the spot-instance case.
        failpoints.configure("worker.start.crash=*@attempt:1")
        queue = make_queue(tmp_path)
        job = submit_and_settle(queue, RunSpec("md5", "tdnuca", scale=SCALE))
        assert job.state == "done"
        assert job.worker_deaths == 1 and job.attempts == 2
        died = next(e for e in job.events.since(0)[0]
                    if e["kind"] == "worker_died")
        assert died["exitcode"] == 99

    def test_hung_worker_loses_lease_and_job_recovers(self, tmp_path):
        # The worker stops heartbeating mid-simulation (sleep 60 at a
        # task boundary); the supervisor kills it at lease expiry and the
        # retry completes clean.
        failpoints.configure(
            "worker.hang=*@attempt:1@task_ge:30@param:60"
        )
        queue = make_queue(
            tmp_path, checkpoint_every=25, lease_timeout=1.0
        )
        job = submit_and_settle(queue, RunSpec("md5", "tdnuca", scale=SCALE))
        assert job.state == "done"
        assert job.worker_deaths == 1 and job.attempts == 2
        died = next(e for e in job.events.since(0)[0]
                    if e["kind"] == "worker_died")
        assert died["reason"] == "lease-expired"
        assert died["heartbeat_age_s"] >= 1.0
        assert queue.stats()["pool"]["lease_expired"] == 1
        assert json.dumps(job.result, sort_keys=True) == json.dumps(
            reference_result(), sort_keys=True
        )

    def test_worker_oom_is_a_classified_transient_failure(self, tmp_path):
        # The oom action allocates until MemoryError (capped at 64 MB
        # here — no rlimit needed); the worker survives to report it, so
        # this is a WorkerJobError retried under the normal budget.
        failpoints.configure("worker.oom=*@attempt:1@task_ge:30@param:64")
        queue = make_queue(tmp_path, retries=1, checkpoint_every=25)
        job = submit_and_settle(queue, RunSpec("md5", "tdnuca", scale=SCALE))
        assert job.state == "done"
        assert job.attempts == 2
        assert job.worker_deaths == 0  # clean error, not a dead worker
        retry = next(e for e in job.events.since(0)[0]
                     if e["kind"] == "retry")
        assert retry["error"] == "MemoryError"

    def test_hard_timeout_fails_typed(self, tmp_path, monkeypatch):
        # A hang without lease expiry (lease_timeout is generous): the
        # budget's hard backstop kills the worker and the job fails with
        # the typed timeout the thread-pool era promised.
        import repro.service.workers as workers_mod

        monkeypatch.setattr(workers_mod, "HARD_TIMEOUT_GRACE", 0.5)
        failpoints.configure("worker.hang=*@task_ge:1@param:60")
        queue = make_queue(
            tmp_path, timeout=0.2, retries=0, lease_timeout=120.0
        )
        job = submit_and_settle(queue, RunSpec("md5", "tdnuca", scale=SCALE))
        assert job.state == "failed"
        assert job.error["type"] == "timeout"
        died = next(e for e in job.events.since(0)[0]
                    if e["kind"] == "worker_died")
        assert died["reason"] == "hard-timeout"


class TestPoisonQuarantine:
    def test_three_deaths_quarantine_with_diagnostic_bundle(self, tmp_path):
        # Unconditional crash for this job label: every attempt kills its
        # worker.  At poison_after=3 deaths the job must be quarantined —
        # even though retries=5 would otherwise keep it running.
        failpoints.configure("worker.crash=*@job:md5/tdnuca@task_ge:10")
        queue = make_queue(
            tmp_path, workers=2, retries=5, poison_after=3,
            checkpoint_every=25,
        )
        spec = RunSpec("md5", "tdnuca", scale=SCALE)

        async def go():
            await queue.start()
            job = queue.submit(spec)
            await wait_settled(job)
            # Never re-admitted within this server lifetime: the
            # resubmission is rejected synchronously, before touching
            # queue or pool.
            with pytest.raises(ServiceError) as exc:
                queue.submit(RunSpec("md5", "tdnuca", scale=SCALE))
            await queue.drain(grace=0.5)
            return job, exc.value

        job, rejection = run_async(go())
        assert job.state == "failed"
        assert job.error["type"] == "poisoned"
        assert job.error["retryable"] is False
        assert job.worker_deaths == 3 and job.attempts == 3

        # The diagnostic bundle names everything an operator needs.
        bundles = list((queue.spool / "poison").glob("*.json"))
        assert len(bundles) == 1
        bundle = json.loads(bundles[0].read_text())
        assert bundle["kind"] == "poison-quarantine"
        assert bundle["label"] == "md5/tdnuca"
        assert bundle["job_id"] == job.id
        assert bundle["attempts"] == 3
        assert bundle["worker_deaths"] == 3
        assert bundle["last_death"]["signal"] == 9
        assert bundle["last_death"]["reason"] == "crashed"
        assert bundle["last_death"]["heartbeat_age_s"] >= 0
        assert bundle["job_key"] == queue._poison_key(spec)
        assert bundle["events_tail"]

        assert rejection.type == "poisoned"
        assert "quarantined" in rejection.message
        stats = queue.stats()
        assert stats["poisoned"] == 1
        assert stats["pool"]["deaths"] == 3

    def test_death_burst_degrades_concurrency_then_recovers(self, tmp_path):
        failpoints.configure("worker.crash=*@job:md5/tdnuca@task_ge:10")
        queue = make_queue(
            tmp_path, workers=2, retries=5, poison_after=3,
            degrade_after=2, checkpoint_every=25,
        )

        async def go():
            await queue.start()
            poison = queue.submit(RunSpec("md5", "tdnuca", scale=SCALE))
            await wait_settled(poison)
            degraded = queue.pool.concurrency
            # A healthy job completes despite the carnage and buys the
            # pool one step of concurrency back.
            healthy = queue.submit(RunSpec("md5", "snuca", scale=SCALE))
            await wait_settled(healthy)
            # note_ok only restores once the death window has passed.
            queue.pool._death_times.clear()
            queue.pool.note_ok()
            restored = queue.pool.concurrency
            await queue.drain(grace=0.5)
            return poison, degraded, healthy, restored

        poison, degraded, healthy, restored = run_async(go())
        assert poison.error["type"] == "poisoned"
        assert degraded == 1, "2+ deaths in the window must shed to 1"
        assert healthy.state == "done"
        assert restored == 2


class TestMonotonicHeartbeats:
    """Lease-expiry decisions must ride the monotonic clock: an NTP step
    in either direction cannot make a healthy worker look dead."""

    def test_heartbeat_age_ignores_wall_clock_steps(self):
        from repro.service.workers import (
            _HB_MONO,
            _HB_WALL,
            _stamp,
            AttemptHandle,
        )

        hb = [0.0, 0.0]
        _stamp(hb)
        handle = AttemptHandle(proc=None, hb=hb)
        # a wall-clock step decades backwards: diagnostics move, age not
        hb[_HB_WALL] = 0.0
        assert handle.heartbeat_age() < 1.0
        assert handle.heartbeat_wall() == 0.0
        # a *monotonic* silence is what ages the lease
        hb[_HB_MONO] = time.monotonic() - 42.0
        assert 41.0 < handle.heartbeat_age() < 44.0

    def test_stamp_fills_both_slots(self):
        from repro.service.workers import _HB_MONO, _HB_WALL, _stamp

        hb = [0.0, 0.0]
        before_wall = time.time()
        _stamp(hb)
        assert abs(hb[_HB_MONO] - time.monotonic()) < 1.0
        assert hb[_HB_WALL] >= before_wall
