"""Property-based coherence invariants under random multi-core traces.

After ANY interleaving of reads/writes from any cores, the steady-state
MESI invariants must hold machine-wide:

* single-writer: a block dirty in some L1 is resident in exactly one L1;
* directory-owner consistency: a dirty L1 block's directory owner is that
  core;
* inclusivity: an L1-resident block is resident in (some bank of) the LLC
  under S-NUCA (no bypass, no replication drops).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sim.machine import build_machine

from tests.conftest import tiny_config

# (core, block, is_write) sequences over a small block space so that
# sharing, upgrades and evictions all actually happen.
accesses = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.integers(0, 40),
        st.booleans(),
    ),
    min_size=1,
    max_size=150,
)


def apply_trace(machine, trace):
    for core, block, write in trace:
        machine._run_blocks(
            core,
            np.array([block], dtype=np.int64),
            np.array([write], dtype=bool),
        )


def dirty_holders(machine, block):
    return [
        c for c, l1 in enumerate(machine.l1s)
        if l1.contains(block) and l1.is_dirty(block)
    ]


@given(accesses)
@settings(max_examples=40, deadline=None)
def test_single_writer_invariant(trace):
    m = build_machine(tiny_config(), "snuca", fragmentation=0.0)
    apply_trace(m, trace)
    for block in range(41):
        holders = dirty_holders(m, block)
        if holders:
            # Dirty implies exclusive: no other L1 may hold the block.
            sharers = [c for c, l1 in enumerate(m.l1s) if l1.contains(block)]
            assert sharers == holders
            assert len(holders) == 1


@given(accesses)
@settings(max_examples=40, deadline=None)
def test_directory_owner_matches_dirty_copy(trace):
    m = build_machine(tiny_config(), "snuca", fragmentation=0.0)
    apply_trace(m, trace)
    for block in range(41):
        holders = dirty_holders(m, block)
        if holders:
            assert m.directory.owner(block) == holders[0]


@given(accesses)
@settings(max_examples=40, deadline=None)
def test_inclusive_llc(trace):
    m = build_machine(tiny_config(), "snuca", fragmentation=0.0)
    apply_trace(m, trace)
    for core, l1 in enumerate(m.l1s):
        for block in l1.resident_blocks():
            assert m.llc.banks_holding(block), (core, block)


@given(accesses)
@settings(max_examples=40, deadline=None)
def test_counters_consistent(trace):
    m = build_machine(tiny_config(), "snuca", fragmentation=0.0)
    apply_trace(m, trace)
    assert m.l1s and sum(l1.stats.accesses for l1 in m.l1s) == len(trace)
    llc = m.llc.aggregate_stats()
    assert llc.hits + llc.misses == llc.accesses
    # Every LLC demand miss fetched from DRAM (plus write-allocate fills
    # from writebacks can also read DRAM, so >=).
    assert m.dram.stats.reads >= llc.misses - llc.dirty_evictions - llc.invalidations
