"""Memory controllers and the row-buffer model."""

import pytest

from repro.config import LatencyConfig
from repro.noc.topology import Mesh
from repro.sim.dram import MemoryControllers

MESH = Mesh(4, 4)


def make_mc():
    return MemoryControllers(MESH, LatencyConfig())


class TestPlacement:
    def test_controllers_at_corners(self):
        mc = make_mc()
        assert set(mc.tiles) == {0, 3, 12, 15}

    def test_block_interleaving(self):
        mc = make_mc()
        assert mc.controller_for(0) == mc.tiles[0]
        assert mc.controller_for(1) == mc.tiles[1]
        assert mc.controller_for(4) == mc.tiles[0]

    def test_degenerate_mesh_dedup(self):
        mc = MemoryControllers(Mesh(1, 4, 1, 2))
        assert len(mc.tiles) == 2


class TestRowBuffer:
    def test_first_access_row_miss(self):
        mc = make_mc()
        _, cycles = mc.read(0)
        assert cycles == LatencyConfig().dram
        assert mc.stats.row_misses == 1

    def test_sequential_same_controller_hits(self):
        mc = make_mc()
        lat = LatencyConfig()
        mc.read(0)
        # Block 4 -> same controller (4 MCs), same 32-block row.
        _, cycles = mc.read(4)
        assert cycles == lat.dram_row_hit
        assert mc.stats.row_hits == 1

    def test_far_block_misses_row(self):
        mc = make_mc()
        mc.read(0)
        _, cycles = mc.read(4096)
        assert cycles == LatencyConfig().dram

    def test_per_controller_rows(self):
        mc = make_mc()
        mc.read(0)  # MC 0
        mc.read(1)  # MC 1, its own open row
        _, cycles = mc.read(4)  # MC 0 again, row still open
        assert cycles == LatencyConfig().dram_row_hit

    def test_writes_update_row(self):
        mc = make_mc()
        mc.write(0)
        _, cycles = mc.read(4)
        assert cycles == LatencyConfig().dram_row_hit

    def test_stats(self):
        mc = make_mc()
        mc.read(0)
        mc.write(4)
        assert mc.stats.reads == 1
        assert mc.stats.writes == 1
        assert mc.stats.accesses == 2
        assert mc.stats.row_hit_ratio == pytest.approx(0.5)

    def test_streaming_sweep_mostly_hits(self):
        mc = make_mc()
        for blk in range(256):
            mc.read(blk)
        assert mc.stats.row_hit_ratio >= 0.85
