"""Golden stats-equivalence suite.

Replays every case in :data:`repro.experiments.golden.GOLDEN_CASES` and
compares the full canonical ``MachineStats`` snapshot against the
committed JSON under tests/golden/.  Equality is *exact* — hot-path
optimizations (batched counters, allocation-free probes, precomputed
geometry) must be statistically invisible down to the last counter and
derived float.

Every case runs under *each* simulation kernel against the same
snapshot: the suite doubles as the cross-kernel equivalence gate (the
vector backend's contract is byte-identical MachineStats, DESIGN.md
§13).  When numpy is unavailable the vector leg degrades to the
reference path by design, so it still must (and does) match.

Regenerate snapshots only for intentional modelling changes:
``PYTHONPATH=src python scripts/update_golden_stats.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.golden import GOLDEN_CASES, run_case
from repro.sim.kernels import KERNEL_ENV

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

KERNELS = ("reference", "vector")


def _flatten(prefix: str, value, out: dict) -> None:
    if isinstance(value, dict):
        for k, v in value.items():
            _flatten(f"{prefix}.{k}" if prefix else str(k), v, out)
    else:
        out[prefix] = value


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize(
    "case", GOLDEN_CASES, ids=[c.case_id for c in GOLDEN_CASES]
)
def test_stats_match_golden_snapshot(case, kernel, monkeypatch):
    monkeypatch.delenv(KERNEL_ENV, raising=False)
    path = GOLDEN_DIR / f"{case.case_id}.json"
    assert path.exists(), (
        f"missing golden snapshot {path}; run "
        "'PYTHONPATH=src python scripts/update_golden_stats.py'"
    )
    expected = json.loads(path.read_text())
    actual = run_case(case, kernel=kernel)

    flat_expected: dict = {}
    flat_actual: dict = {}
    _flatten("", expected, flat_expected)
    _flatten("", actual, flat_actual)
    diffs = sorted(
        f"{key}: golden={flat_expected.get(key)!r} actual={flat_actual.get(key)!r}"
        for key in set(flat_expected) | set(flat_actual)
        if flat_expected.get(key) != flat_actual.get(key)
    )
    assert not diffs, (
        f"{case.case_id} [{kernel}]: {len(diffs)} statistic(s) drifted from "
        "the golden snapshot:\n  " + "\n  ".join(diffs)
    )
