"""The flattened per-reference hot path: batched counters, allocation-free
probes, trace memoization, and the slow-path equivalences they rely on."""

import numpy as np
import pytest

from repro.cache.bank import CacheBank
from repro.cache.replacement import TreePLRUState, _victim_for_bits
from repro.mem.region import Region
from repro.noc.traffic import NUM_MESSAGE_CLASSES, MessageClass, TrafficStats
from repro.runtime.task import AccessChunk, Dependency, Task
from repro.runtime.trace import build_trace, build_trace_cached, trace_signature
from repro.deps import DepMode
from tests.sim.test_machine import make, run_blocks


class TestBatchedTraffic:
    def test_add_batch_matches_record_message(self):
        a = TrafficStats()
        b = TrafficStats()
        a.record_message(MessageClass.REQUEST, 8, 3)
        a.record_message(MessageClass.DATA, 72, 3)
        a.record_message(MessageClass.WRITEBACK, 72, 1)
        a.record_nuca_distance(3)
        cb = [0] * NUM_MESSAGE_CLASSES
        cb[MessageClass.REQUEST] = 8
        cb[MessageClass.DATA] = 72
        cb[MessageClass.WRITEBACK] = 72
        b.add_batch(
            router_bytes=8 * 4 + 72 * 4 + 72 * 2,
            flit_hops=1 * 4 + 5 * 4 + 5 * 2,
            messages=3,
            class_bytes=cb,
            nuca_distance_sum=3,
            nuca_distance_count=1,
        )
        for f in TrafficStats.__slots__:
            assert getattr(a, f) == getattr(b, f), f

    def test_add_batch_validates_once_per_flush(self):
        t = TrafficStats()
        with pytest.raises(ValueError):
            t.add_batch(-1, 0, 0, [0] * NUM_MESSAGE_CLASSES)
        with pytest.raises(ValueError):
            t.add_batch(0, 0, 0, [0] * (NUM_MESSAGE_CLASSES - 1))
        bad = [0] * NUM_MESSAGE_CLASSES
        bad[2] = -5
        with pytest.raises(ValueError):
            t.add_batch(0, 0, 0, bad)
        assert t.messages == 0 and t.router_bytes == 0

    def test_record_message_still_raises(self):
        # The per-call range check moved out of the hot loop, but the
        # public per-message API keeps rejecting bad input.
        t = TrafficStats()
        with pytest.raises(ValueError):
            t.record_message(MessageClass.REQUEST, -8, 0)
        with pytest.raises(ValueError):
            t.record_message(MessageClass.REQUEST, 8, -1)
        with pytest.raises(ValueError):
            t.record_nuca_distance(-2)


class TestResetStats:
    def test_reset_clears_dense_counters_and_pending(self):
        m = make("tdnuca")
        region = Region(0, 4096, "d")
        t = Task(
            "t",
            (Dependency(region, DepMode.INOUT),),
            (AccessChunk(region, True),),
        )
        m.run_task_trace(0, t)
        m.collect_stats()
        assert m.traffic.messages > 0
        assert any(m.traffic.class_bytes)
        # Leave deltas pending (no flush) then reset: both the dense
        # counters and the unflushed accumulators must die.
        m._acc_messages = 7
        m._acc_class_bytes[0] = 99
        m.reset_stats()
        assert m.traffic.messages == 0
        assert m.traffic.class_bytes == [0] * NUM_MESSAGE_CLASSES
        assert m._acc_messages == 0
        assert m._acc_class_bytes == [0] * NUM_MESSAGE_CLASSES
        assert m._acc_router_bytes == 0
        # A fresh run accounts from zero.
        m.run_task_trace(0, t)
        m.collect_stats()
        assert m.traffic.messages > 0


class TestFlushAccounting:
    def _dirty_machine(self):
        m = make("snuca")
        blocks = list(range(64))
        run_blocks(m, 0, blocks, writes=[True] * len(blocks))
        return m, blocks

    def test_flush_l1_bumps_flushed_blocks(self):
        m, blocks = self._dirty_machine()
        before = sum(l1.stats.flushed_blocks for l1 in m.l1s)
        flushed, dirty = m._flush_l1(blocks, range(m.num_cores))
        after = sum(l1.stats.flushed_blocks for l1 in m.l1s)
        assert flushed > 0
        assert after - before == flushed
        assert dirty > 0  # every resident block was written

    def test_flush_llc_bumps_flushed_blocks(self):
        m, blocks = self._dirty_machine()
        before = sum(b.stats.flushed_blocks for b in m.llc.banks)
        flushed, _dirty = m._flush_llc(blocks, range(len(m.llc.banks)))
        after = sum(b.stats.flushed_blocks for b in m.llc.banks)
        assert flushed > 0
        assert after - before == flushed

    def test_flush_blocks_collect_counts_uniformly(self):
        bank = CacheBank(1024, 2, 64)
        bank.fill(0)
        bank.fill(1, dirty=True)
        removed = bank.flush_blocks_collect([0, 1, 2, 3])
        assert sorted(removed) == [(0, False), (1, True)]
        assert bank.stats.flushed_blocks == 2
        assert bank.stats.invalidations == 2
        assert bank.occupancy == 0


class TestNoDemandFill:
    def test_fill_skips_demand_counters(self):
        bank = CacheBank(1024, 2, 64)
        res = bank.fill(5)
        assert not res.hit and res.evicted is None
        assert bank.stats.hits == 0 and bank.stats.misses == 0
        # Refill of a resident block is a silent touch.
        res = bank.fill(5, dirty=True)
        assert res.hit
        assert bank.stats.hits == 0 and bank.stats.misses == 0
        assert bank.is_dirty(5)

    def test_fill_evictions_are_counted(self):
        bank = CacheBank(256, 2, 64)  # 2 sets x 2 ways
        bank.fill(0)
        bank.fill(2, dirty=True)
        res = bank.fill(4)  # same set: displaces one of 0/2
        assert res.evicted in (0, 2)
        assert bank.stats.evictions == 1
        assert bank.stats.misses == 0


class TestPlruVictimTable:
    @pytest.mark.parametrize("assoc", [2, 4, 8, 16])
    def test_table_matches_reference_walk(self, assoc):
        repl = TreePLRUState(assoc)
        assert repl._victim is not None
        for bits in range(1 << (assoc - 1)):
            assert repl._victim[bits] == _victim_for_bits(assoc, bits), bits

    def test_wide_trees_fall_back_to_walk(self):
        repl = TreePLRUState(32)
        assert repl._victim is None
        assert 0 <= repl.victim() < 32

    def test_bank_probe_touch_matches_touch_method(self):
        fast = CacheBank(1024, 4, 64)
        assert fast._plru_fast
        slow = CacheBank(1024, 4, 64)
        slow._plru_fast = False
        for block in (0, 4, 8, 12, 0, 8):
            fast.access(block, False)
            slow.access(block, False)
        assert [r._bits for r in fast._repl] == [r._bits for r in slow._repl]


class TestTraceMemoization:
    def _task(self, start=0):
        region = Region(start, 1024, "d")
        return Task(
            "t",
            (Dependency(region, DepMode.IN),),
            (AccessChunk(region, False, 2),),
        )

    def test_same_signature_shares_trace(self):
        m = make("snuca")
        cache = {}
        t1, t2 = self._task(), self._task()
        assert trace_signature(t1) == trace_signature(t2)
        tr1 = build_trace_cached(t1, m.amap, cache)
        tr2 = build_trace_cached(t2, m.amap, cache)
        assert tr1 is tr2
        ref = build_trace(t1, m.amap)
        assert np.array_equal(tr1.vblocks, ref.vblocks)
        assert np.array_equal(tr1.writes, ref.writes)

    def test_distinct_signatures_get_distinct_traces(self):
        m = make("snuca")
        cache = {}
        tr1 = build_trace_cached(self._task(0), m.amap, cache)
        tr2 = build_trace_cached(self._task(4096), m.amap, cache)
        assert tr1 is not tr2
        assert len(cache) == 2


class TestSpecializedPathEquivalence:
    """The inlined TD resolver / DRAM model must match the method calls."""

    def test_td_fast_path_matches_bank_for(self):
        # Two identical machines; disable the specialisation on one by
        # pretending a bank died (the gate condition), forcing the
        # per-miss bank_for calls, then compare every counter.
        def run(force_slow):
            m = make("tdnuca")
            if force_slow:
                m.policy._dead_banks.add(99)  # nonexistent bank: same mapping
            region = Region(0, 8192, "d")
            t = Task(
                "t",
                (Dependency(region, DepMode.INOUT),),
                (AccessChunk(region, True),),
            )
            m.run_task_trace(0, t)
            return m.collect_stats()

        fast, slow = run(False), run(True)
        assert fast.llc.__dict__ == slow.llc.__dict__
        assert fast.l1.__dict__ == slow.l1.__dict__
        assert fast.traffic.router_bytes == slow.traffic.router_bytes
        assert fast.dram_reads == slow.dram_reads
        assert fast.dram_writes == slow.dram_writes
