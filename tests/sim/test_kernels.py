"""Simulation-kernel dispatch, selection, equivalence and degradation.

The golden suite (tests/sim/test_golden_stats.py) is the byte-identical
equivalence gate over the curated case matrix; this module covers the
kernel *machinery* around it: selection precedence, the per-task
dispatch gate and its fallback accounting, the phased numpy engine
(which the golden traces are too short to reach), randomized
cross-kernel equivalence beyond the golden grid, graceful degradation
when numpy is masked away, the verify kernel's double-execution, and
the backend-agnosticism of cache/snapshot fingerprints.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import replace

import numpy as np
import pytest

import repro.sim.kernels as kernels_mod
import repro.sim.kernels.vector as vector_mod
from repro import failpoints
from repro.api import Session
from repro.config import scaled_config
from repro.sim.kernels import (
    DISABLE_NUMPY_ENV,
    KERNEL_ENV,
    KERNEL_NAMES,
    KernelMismatchError,
    make_kernel,
    numpy_available,
    resolve_kernel_name,
)
from repro.sim.kernels.reference import ReferenceKernel
from repro.sim.kernels.vector import VectorKernel
from repro.sim.kernels.verify import MISMATCH_SITE, VerifyKernel
from repro.sim.machine import build_machine

from tests.conftest import tiny_config


@pytest.fixture(autouse=True)
def _clean_kernel_env(monkeypatch):
    monkeypatch.delenv(KERNEL_ENV, raising=False)
    monkeypatch.delenv(DISABLE_NUMPY_ENV, raising=False)


def small_config(denom=1024, **overrides):
    cfg = scaled_config(1.0 / denom)
    return replace(cfg, **overrides) if overrides else cfg


def run_stats(workload, policy, kernel, denom=1024, seed=0, **overrides):
    cfg = small_config(denom, kernel=kernel, **overrides)
    return Session(cfg, seed=seed).run(workload, policy).stats_dict()


def make_machine(policy="tdnuca", kernel="vector", **cfg_kw):
    cfg = replace(tiny_config(**cfg_kw), kernel=kernel)
    return build_machine(cfg, policy, fragmentation=0.0)


def drive(machine, blocks, writes=None, core=0):
    arr = np.asarray(blocks, dtype=np.int64)
    w = (
        np.zeros(len(arr), dtype=bool)
        if writes is None
        else np.asarray(writes, dtype=bool)
    )
    return machine._run_blocks(core, arr, w)


class TestSelection:
    def test_auto_prefers_vector_with_numpy(self):
        assert numpy_available()
        assert isinstance(make_kernel("auto"), VectorKernel)

    def test_explicit_names(self):
        assert isinstance(make_kernel("reference"), ReferenceKernel)
        assert isinstance(make_kernel("vector"), VectorKernel)
        assert isinstance(make_kernel("verify"), VerifyKernel)

    def test_env_overrides_configured(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "reference")
        assert resolve_kernel_name("vector") == "reference"
        assert isinstance(make_kernel("vector"), ReferenceKernel)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown simulation kernel"):
            resolve_kernel_name("turbo")

    def test_config_validates_kernel(self):
        with pytest.raises(ValueError, match="unknown simulation kernel"):
            replace(tiny_config(), kernel="turbo").validate()
        for name in KERNEL_NAMES:
            replace(tiny_config(), kernel=name).validate()

    def test_machine_inherits_config_kernel(self):
        assert make_machine(kernel="reference").kernel.name == "reference"
        assert make_machine(kernel="vector").kernel.name == "vector"


class TestDispatchGate:
    """The vector kernel defers per task whenever it cannot model the
    machine's current state, and accounts for every decision."""

    def test_tdnuca_takes_the_vector_path(self):
        m = make_machine("tdnuca")
        drive(m, [100, 101, 102, 100])
        st = m.kernel.stats
        assert st.tasks_total == 1
        assert st.tasks_vector == 1
        assert st.tasks_reference == 0
        assert st.fallback_reasons == {}

    def test_snuca_takes_the_vector_path(self):
        m = make_machine("snuca")
        drive(m, [100, 101])
        assert m.kernel.stats.tasks_vector == 1

    def test_dnuca_falls_back(self):
        m = make_machine("dnuca")
        drive(m, [100, 101])
        st = m.kernel.stats
        assert st.tasks_vector == 0
        assert st.tasks_reference == 1
        assert st.fallback_reasons == {"dnuca": 1}

    def test_unmodelled_policy_falls_back(self):
        m = make_machine("rnuca")
        drive(m, [100, 101])
        assert m.kernel.stats.fallback_reasons == {"policy": 1}

    def test_fallback_still_produces_reference_state(self):
        blocks = [100, 101, 102, 100, 103]
        ref = make_machine("rnuca", kernel="reference")
        vec = make_machine("rnuca", kernel="vector")
        c_ref = drive(ref, blocks)
        c_vec = drive(vec, blocks)
        assert c_ref == c_vec
        assert ref.state_dict() == vec.state_dict()

    def test_phased_engine_runs_above_threshold(self, monkeypatch):
        monkeypatch.setattr(vector_mod, "NUMPY_MIN_REFS", 0)
        m = make_machine("tdnuca")
        drive(m, [100, 101, 102, 100])
        st = m.kernel.stats
        assert st.tasks_vector + st.tasks_mixed == 1

    def test_dispatch_stats_stay_off_machine_stats(self):
        # Result payloads must be backend-agnostic (the service result
        # cache shares entries across kernels), so dispatch accounting
        # lives on the kernel object only.
        stats = run_stats("kmeans", "tdnuca", kernel="vector", denom=2048)
        blob = repr(stats)
        assert "tasks_vector" not in blob
        assert "fallback" not in blob


class TestCrossKernelEquivalence:
    """Randomized sampling beyond the golden grid: any (workload,
    policy, seed) must produce byte-identical stats on both kernels."""

    COMBOS = [
        ("gauss", "tdnuca", 1),
        ("md5", "snuca", 2),
        ("redblack", "tdnuca-bypass-only", 3),
        ("knn", "tdnuca", 4),
    ]

    @pytest.mark.parametrize(
        "workload,policy,seed", COMBOS,
        ids=[f"{w}-{p}-s{s}" for w, p, s in COMBOS],
    )
    def test_random_cell_matches(self, workload, policy, seed):
        ref = run_stats(workload, policy, "reference", denom=2048, seed=seed)
        vec = run_stats(workload, policy, "vector", denom=2048, seed=seed)
        assert ref == vec

    def test_random_traces_match_per_task(self):
        """Drive both kernels over identical random block traces
        (mixed reads/writes, heavy reuse to force evictions and
        coherence) and demand identical cycles and machine state."""
        rng = random.Random(0xC0FFEE)
        ref = make_machine("tdnuca", kernel="reference")
        vec = make_machine("tdnuca", kernel="vector")
        for task in range(8):
            core = rng.randrange(ref.num_cores)
            n = rng.randrange(50, 400)
            blocks = [rng.randrange(0, 512) for _ in range(n)]
            writes = [rng.random() < 0.3 for _ in range(n)]
            c_ref = drive(ref, blocks, writes, core=core)
            c_vec = drive(vec, blocks, writes, core=core)
            assert c_ref == c_vec, f"cycle divergence at task {task}"
            assert ref.state_dict() == vec.state_dict(), (
                f"state divergence at task {task}"
            )

    def test_phased_engine_matches_reference(self, monkeypatch):
        """Force every task through the phased numpy path (threshold 0)
        and hold it to the same equivalence bar."""
        monkeypatch.setattr(vector_mod, "NUMPY_MIN_REFS", 0)
        for workload, policy in (("kmeans", "tdnuca"), ("histo", "snuca")):
            ref = run_stats(workload, policy, "reference", denom=2048)
            vec = run_stats(workload, policy, "vector", denom=2048)
            assert ref == vec, f"{workload}/{policy} phased-engine drift"


class TestNoNumpyDegradation:
    def test_numpy_available_respects_mask(self, monkeypatch):
        assert numpy_available()
        monkeypatch.setenv(DISABLE_NUMPY_ENV, "1")
        assert not numpy_available()

    def test_explicit_vector_warns_once_then_falls_back(self, monkeypatch):
        monkeypatch.setenv(DISABLE_NUMPY_ENV, "1")
        monkeypatch.setattr(kernels_mod, "_warned_no_numpy", False)
        with pytest.warns(RuntimeWarning, match="falling back to the reference"):
            k = make_kernel("vector")
        assert isinstance(k, ReferenceKernel)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert isinstance(make_kernel("vector"), ReferenceKernel)

    def test_auto_degrades_silently(self, monkeypatch):
        monkeypatch.setenv(DISABLE_NUMPY_ENV, "1")
        monkeypatch.setattr(kernels_mod, "_warned_no_numpy", False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert isinstance(make_kernel("auto"), ReferenceKernel)

    def test_degraded_run_matches_reference(self, monkeypatch):
        ref = run_stats("kmeans", "tdnuca", "reference", denom=2048)
        monkeypatch.setenv(DISABLE_NUMPY_ENV, "1")
        monkeypatch.setattr(kernels_mod, "_warned_no_numpy", True)
        degraded = run_stats("kmeans", "tdnuca", "vector", denom=2048)
        assert ref == degraded


class TestVerifyKernel:
    @pytest.fixture(autouse=True)
    def _clean_failpoints(self):
        failpoints.reset()
        yield
        failpoints.reset()

    def test_clean_run_passes_and_counts(self):
        m = make_machine("tdnuca", kernel="verify")
        drive(m, [100, 101, 102, 100])
        drive(m, [200, 201], core=1)
        st = m.kernel.stats
        assert st.tasks_total == 2
        assert st.tasks_verified == 2

    def test_verify_session_matches_reference(self):
        ref = run_stats("kmeans", "tdnuca", "reference", denom=2048)
        ver = run_stats("kmeans", "tdnuca", "verify", denom=2048)
        assert ref == ver

    def test_mismatch_failpoint_trips_the_comparison(self):
        # A verifier that cannot fail verifies nothing: corrupt the
        # vector-side digest through the failpoint and demand the raise.
        failpoints.configure(f"{MISMATCH_SITE}=1@action:corrupt")
        m = make_machine("tdnuca", kernel="verify")
        with pytest.raises(KernelMismatchError, match="divergence at task"):
            drive(m, [100, 101, 102])

    def test_mismatch_failpoint_in_full_run(self):
        failpoints.configure(f"{MISMATCH_SITE}=1@action:corrupt@after:3")
        cfg = small_config(2048, kernel="verify")
        with pytest.raises(KernelMismatchError):
            Session(cfg).run("kmeans", "tdnuca")


class TestBackendAgnosticFingerprints:
    def test_config_sha_ignores_kernel(self):
        from repro.snapshot.format import config_sha256

        cfg = small_config(1024)
        assert config_sha256(replace(cfg, kernel="vector")) == config_sha256(
            replace(cfg, kernel="reference")
        )

    def test_service_request_key_shared_across_kernels(self):
        from repro.service.cache import request_key

        cfg = small_config(1024)
        keys = {
            request_key(replace(cfg, kernel=k), "kmeans", "tdnuca", 0)
            for k in ("auto", "reference", "vector")
        }
        assert len(keys) == 1

    def test_run_spec_round_trips_kernel(self):
        from repro.service.queue import RunSpec, spec_from_dict

        spec = RunSpec("kmeans", "tdnuca", scale=1024, kernel="vector")
        assert spec.config().kernel == "vector"
        raw = spec.to_dict()
        assert raw["kernel"] == "vector"
        back = spec_from_dict(raw)
        assert back.kernel == "vector"
        assert spec_from_dict(RunSpec("kmeans", "tdnuca").to_dict()).kernel == "auto"
