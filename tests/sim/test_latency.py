"""Latency composition."""

from repro.config import LatencyConfig
from repro.sim.latency import LatencyModel

LAT = LatencyModel(LatencyConfig())
CFG = LatencyConfig()
HOP = CFG.noc_per_hop()


class TestComposition:
    def test_local_llc_hit(self):
        assert LAT.llc_access(0) == CFG.l1_hit + CFG.llc_hit

    def test_remote_llc_hit_round_trip(self):
        assert LAT.llc_access(3) == CFG.l1_hit + 6 * HOP + CFG.llc_hit

    def test_miss_detect_cheaper_than_hit(self):
        assert LAT.llc_miss_detect(2) < LAT.llc_access(2)

    def test_miss_extra(self):
        assert LAT.llc_miss_extra(2, 120) == 4 * HOP + 120

    def test_bypass_skips_llc(self):
        bypass = LAT.bypass_access(3, 120)
        through = LAT.llc_miss_detect(3) + LAT.llc_miss_extra(0, 120)
        assert bypass < through

    def test_row_hit_propagates(self):
        assert LAT.bypass_access(2, 45) == LAT.bypass_access(2, 120) - 75

    def test_monotone_in_distance(self):
        for h in range(6):
            assert LAT.llc_access(h) < LAT.llc_access(h + 1)
