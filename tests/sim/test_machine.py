"""Machine integration: the full L1 -> policy -> LLC -> DRAM access path."""

import numpy as np
import pytest

from repro.deps import DepMode
from repro.mem.region import Region
from repro.nuca.base import BYPASS
from repro.runtime.task import AccessChunk, Dependency, Task
from repro.sim.machine import build_machine

from tests.conftest import tiny_config


def make(policy="snuca", **cfg_kw):
    return build_machine(tiny_config(**cfg_kw), policy, fragmentation=0.0)


def run_blocks(machine, core, blocks, writes=None):
    arr = np.asarray(blocks, dtype=np.int64)
    w = (
        np.zeros(len(arr), dtype=bool)
        if writes is None
        else np.asarray(writes, dtype=bool)
    )
    return machine._run_blocks(core, arr, w)


def read_task(region, passes=1):
    return Task("t", (Dependency(region, DepMode.IN),), (AccessChunk(region, False, passes),))


class TestBuildMachine:
    @pytest.mark.parametrize(
        "policy",
        ["snuca", "rnuca", "dnuca", "tdnuca", "tdnuca-bypass-only", "tdnuca-noisa"],
    )
    def test_all_policies_build(self, policy):
        m = make(policy)
        assert m.num_cores == 16

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make("hnuca")

    def test_tdnuca_has_hardware(self):
        m = make("tdnuca")
        assert m.isa is not None
        assert len(m.rrts) == 16

    def test_snuca_has_no_rrts(self):
        m = make("snuca")
        assert m.rrts is None

    def test_noisa_behaves_like_snuca(self):
        m = make("tdnuca-noisa")
        assert m.rrts is None  # no RRT latency on the access path
        assert m.isa is not None  # but the extension can sample it


class TestAccessPath:
    def test_cold_access_misses_everywhere(self):
        m = make()
        run_blocks(m, 0, [100])
        assert m.l1s[0].stats.misses == 1
        llc = m.llc.aggregate_stats()
        assert llc.misses == 1
        assert m.dram.stats.reads == 1

    def test_second_access_hits_l1(self):
        m = make()
        cycles1 = run_blocks(m, 0, [100])
        cycles2 = run_blocks(m, 0, [100])
        assert m.l1s[0].stats.hits == 1
        assert cycles2 < cycles1

    def test_l1_miss_llc_hit(self):
        m = make()
        run_blocks(m, 0, [100])
        # Evict block 100 from L1 (2 sets) but not the 64-block LLC bank...
        # use another core instead: its L1 is cold, the LLC is shared.
        run_blocks(m, 1, [100])
        assert m.llc.aggregate_stats().hits == 1
        assert m.dram.stats.reads == 1  # no second DRAM fetch

    def test_interleaved_bank_selection(self):
        m = make()
        run_blocks(m, 0, [0, 1, 2, 3])
        for bank in range(4):
            assert m.llc.banks[bank].stats.accesses == 1

    def test_nuca_distance_recorded(self):
        m = make()
        run_blocks(m, 0, [0])  # bank 0 is core 0's local bank
        assert m.traffic.mean_nuca_distance == 0.0
        run_blocks(m, 0, [15])  # bank 15: 6 hops away
        assert m.traffic.nuca_distance_sum == 6

    def test_compute_override(self):
        m = make()
        r = Region(0x10000, 64 * 8)
        t1 = read_task(r)
        t2 = Task(
            "t2", (Dependency(r, DepMode.IN),),
            (AccessChunk(r, False),), compute_per_access=1000,
        )
        c1 = m.run_task_trace(0, t1)
        c2 = m.run_task_trace(0, t2)
        assert c2 > c1 + 6000


class TestWritebacks:
    def test_dirty_l1_eviction_writes_back_to_llc(self):
        m = make()
        # L1: 2 sets x 8 ways.  Fill set 0 with dirty blocks, then overflow.
        blocks = [i * 2 for i in range(8)]
        run_blocks(m, 0, blocks, [True] * 8)
        before = sum(b.stats.write_hits for b in m.llc.banks)
        run_blocks(m, 0, [100], [False])  # evicts a dirty victim
        llc_writes = sum(
            b.stats.write_hits + b.stats.misses for b in m.llc.banks
        )
        assert llc_writes > before

    def test_llc_dirty_eviction_goes_to_dram(self):
        m = make()
        # Fill one LLC bank set beyond assoc with dirty writebacks:
        # write blocks mapping to bank 0, set 0: block = 64*k (64 banks*... )
        # bank = blk % 16, set = (blk) % 4 within bank: choose blk = 64*k.
        blocks = [64 * k for k in range(40)]
        run_blocks(m, 0, blocks, [True] * 40)
        # L1 evictions wrote dirty data into LLC bank 0; filling further
        # evicts dirty LLC victims to DRAM.
        assert m.dram.stats.writes > 0


class TestInclusiveBackInvalidation:
    def test_llc_eviction_drops_l1_copy(self):
        m = make()
        run_blocks(m, 0, [0])  # resident in L1[0] and LLC bank 0
        assert m.l1s[0].contains(0)
        # Thrash LLC bank 0, set 0 (16-way): 20 more blocks same set.
        filler = [64 * k for k in range(1, 21)]
        run_blocks(m, 1, filler)
        assert not m.llc.banks[0].contains(0)
        assert not m.l1s[0].contains(0)  # back-invalidated


class TestCoherence:
    def test_remote_write_invalidates_reader(self):
        m = make()
        run_blocks(m, 0, [100], [False])
        run_blocks(m, 1, [100], [True])
        assert not m.l1s[0].contains(100)
        assert m.directory.stats.invalidations_sent >= 1

    def test_remote_read_downgrades_writer(self):
        m = make()
        run_blocks(m, 0, [100], [True])
        assert m.l1s[0].is_dirty(100)
        run_blocks(m, 1, [100], [False])
        assert m.l1s[0].contains(100)
        assert not m.l1s[0].is_dirty(100)
        assert m.directory.stats.downgrades_sent == 1

    def test_write_hit_upgrade(self):
        m = make()
        run_blocks(m, 0, [100], [False])
        run_blocks(m, 1, [100], [False])
        # Core 0 writes its cached copy: upgrade must invalidate core 1.
        run_blocks(m, 0, [100, 100], [False, True])
        assert not m.l1s[1].contains(100)


class TestBypass:
    def make_bypass_machine(self):
        m = make("tdnuca")
        region = Region(0x10000, 64 * 16)
        m.pagetable.ensure_mapped(region)
        start = m.pagetable.translate(region.start)
        for rrt in m.rrts:
            rrt.register(start, start + region.size, 0)
        return m, region

    def test_bypass_skips_llc(self):
        m, region = self.make_bypass_machine()
        m.run_task_trace(0, read_task(region))
        assert m.llc.aggregate_stats().accesses == 0
        assert m.dram.stats.reads == 16
        assert m.policy.stats.bypasses == 16

    def test_bypass_not_counted_in_nuca_distance(self):
        m, region = self.make_bypass_machine()
        m.run_task_trace(0, read_task(region))
        assert m.traffic.nuca_distance_count == 0

    def test_bypassed_dirty_eviction_goes_to_dram(self):
        m, region = self.make_bypass_machine()
        t = Task(
            "w", (Dependency(region, DepMode.OUT),), (AccessChunk(region, True),)
        )
        m.run_task_trace(0, t)
        # Overflow the L1 with reads of another (also bypassed) area: the
        # dirty victims must be written straight to DRAM.
        before = m.dram.stats.writes
        m.run_task_trace(0, read_task(region))
        assert m.dram.stats.writes >= before


class TestFlushExecutor:
    def test_l1_flush_writes_back_dirty(self):
        m = make("tdnuca")
        run_blocks(m, 2, [100], [True])
        flushed, dirty = m._execute_flush([100], "l1", (2,))
        assert (flushed, dirty) == (1, 1)
        assert not m.l1s[2].contains(100)
        assert m.dram.stats.writes == 1

    def test_llc_flush(self):
        m = make("tdnuca")
        run_blocks(m, 0, [100], [False])
        bank = 100 % 16
        flushed, dirty = m._execute_flush([100], "llc", (bank,))
        assert flushed == 1
        assert not m.llc.banks[bank].contains(100)

    def test_flush_misses_are_harmless(self):
        m = make("tdnuca")
        assert m._execute_flush([1, 2, 3], "l1", (0,)) == (0, 0)


class TestScratchTraffic:
    def test_nondep_blocks_added(self):
        m = build_machine(
            tiny_config(nondep_blocks_per_task=8), "snuca", fragmentation=0.0
        )
        region = Region(0x10000, 64 * 4)
        m.run_task_trace(0, read_task(region))
        # 4 dep blocks + 8 scratch read + 8 scratch write.
        assert m.l1s[0].stats.accesses == 20

    def test_scratch_does_not_alias_workload(self):
        m = build_machine(
            tiny_config(nondep_blocks_per_task=8), "snuca", fragmentation=0.0
        )
        assert m.census is not None
        region = Region(0x10000, 64 * 4)
        m.run_task_trace(0, read_task(region))
        # Scratch blocks live at the top of the VA space.
        touched = m.census.touched_blocks()
        high = touched[touched >= (1 << 40) >> 6]
        assert len(high) == 8


class TestResetStats:
    def test_counters_zeroed_state_kept(self):
        m = make("tdnuca")
        run_blocks(m, 0, [100, 101], [True, False])
        m.reset_stats()
        assert m.l1s[0].stats.accesses == 0
        assert m.llc.aggregate_stats().accesses == 0
        assert m.dram.stats.reads == 0
        assert m.traffic.router_bytes == 0
        assert m.census.unique_blocks == 0
        # Cache contents survive: next access is an L1 hit.
        run_blocks(m, 0, [100])
        assert m.l1s[0].stats.hits == 1


class TestCensusIntegration:
    def test_census_records_virtual_blocks(self):
        m = make()
        region = Region(0x10000, 64 * 4)
        m.run_task_trace(3, read_task(region))
        census = m.census.rnuca_census()
        assert census.private == 4
        m.run_task_trace(5, read_task(region))
        assert m.census.rnuca_census().shared_read_only == 4
