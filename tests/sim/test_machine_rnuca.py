"""R-NUCA through the machine: classification drives placement and the
reclassification flushes really evict."""

import numpy as np

from repro.nuca.classifier import PageClass
from repro.sim.machine import build_machine

from tests.conftest import tiny_config


def make():
    # page_bytes=512 -> 8 blocks per page.
    return build_machine(tiny_config(), "rnuca", fragmentation=0.0)


def run(machine, core, blocks, writes=None):
    """Classify pages then run blocks — what run_task_trace does."""
    arr = np.asarray(blocks, dtype=np.int64)
    w = np.zeros(len(arr), dtype=bool) if writes is None else np.asarray(writes)
    pages = sorted({int(b) >> 3 for b in arr})
    wrote = [any(bool(x) and (int(b) >> 3) == p for b, x in zip(arr, w)) for p in pages]
    for action in machine.policy.classify_pages(core, pages, wrote):
        machine._apply_flush_action(action)
    machine._run_blocks(core, arr, w)


class TestPrivatePlacement:
    def test_first_toucher_gets_local_bank(self):
        m = make()
        run(m, 5, [100])
        bank = 100 % 16
        # Not interleaved: placed in core 5's bank.
        assert m.llc.banks[5].contains(100)
        if bank != 5:
            assert not m.llc.banks[bank].contains(100)

    def test_private_distance_zero(self):
        m = make()
        run(m, 7, [200, 201, 202])
        assert m.traffic.mean_nuca_distance == 0.0


class TestReclassificationFlush:
    def test_private_to_shared_evicts_owner_copies(self):
        m = make()
        run(m, 0, [100], [True])  # core 0 writes -> private dirty, bank 0
        assert m.llc.banks[0].contains(100)
        assert m.l1s[0].contains(100)
        # Core 1 touches the page via run_task_trace's classify path:
        run2_blocks = np.array([100], dtype=np.int64)
        # _run_blocks bypasses classify_pages; invoke the policy hook the
        # way run_task_trace does.
        for action in m.policy.classify_pages(1, [100 >> 3], [False]):
            m._apply_flush_action(action)
        assert not m.llc.banks[0].contains(100)
        assert not m.l1s[0].contains(100)
        assert m.dram.stats.writes >= 1  # the dirty copy went to memory
        run(m, 1, run2_blocks)
        # Now shared: interleaved home bank.
        assert m.llc.banks[100 % 16].contains(100)

    def test_page_class_progression_through_traces(self):
        from repro.deps import DepMode
        from repro.mem.region import Region
        from repro.runtime.task import AccessChunk, Dependency, Task

        m = make()
        region = Region(0x40000, 512)  # one page
        page = m.pagetable.translate(region.start) >> m.amap.page_shift

        def task(write):
            return Task(
                "t",
                (Dependency(region, DepMode.INOUT if write else DepMode.IN),),
                (AccessChunk(region, write, rmw=write),),
            )

        m.run_task_trace(2, task(False))
        assert m.policy.classifier.classify(page) is PageClass.PRIVATE
        m.run_task_trace(9, task(False))
        assert m.policy.classifier.classify(page) is PageClass.SHARED_RO
        m.run_task_trace(4, task(True))
        assert m.policy.classifier.classify(page) is PageClass.SHARED
