"""The machine generalizes beyond the paper's 4x4 mesh.

TD-NUCA's mechanisms (interleaving fallback, cluster replication, bank
masks) are defined for any power-of-two tile count; these tests run small
programs on 2x2, 4x2 and 8x8 meshes under every policy.
"""

from dataclasses import replace

import pytest

from repro.deps import DepMode
from repro.experiments.runner import build_runtime
from repro.mem.allocator import VirtualAllocator
from repro.runtime import Dependency, Executor, Program, Task
from repro.sim.machine import build_machine

from tests.conftest import tiny_config


def mesh_config(w, h, cw, ch):
    return replace(
        tiny_config(), mesh_width=w, mesh_height=h,
        cluster_width=cw, cluster_height=ch,
    )


def small_program(n=12):
    alloc = VirtualAllocator()
    shared = alloc.allocate(2048, "shared")
    prog = Program("p")
    phase = prog.new_phase()
    for i in range(n):
        chunk = alloc.allocate(1024, f"c{i}")
        phase.append(
            Task(
                f"t[{i}]",
                (
                    Dependency(shared, DepMode.IN),
                    Dependency(chunk, DepMode.INOUT),
                ),
            )
        )
    return prog


MESHES = [(2, 2, 2, 2), (4, 2, 2, 2), (8, 8, 2, 2), (4, 4, 4, 4)]


@pytest.mark.parametrize("w,h,cw,ch", MESHES)
@pytest.mark.parametrize("policy", ["snuca", "rnuca", "dnuca", "tdnuca"])
def test_policies_run_on_any_mesh(w, h, cw, ch, policy):
    cfg = mesh_config(w, h, cw, ch)
    machine = build_machine(cfg, policy)
    ext = build_runtime(machine, policy)
    stats = Executor(machine, extension=ext).run(small_program())
    assert stats.tasks_executed == 12
    ms = machine.collect_stats()
    assert 0 <= ms.mean_nuca_distance <= machine.mesh.diameter()


def test_cluster_masks_scale_with_mesh():
    """On an 8x8 mesh, replication masks carry the 2x2 local cluster."""
    cfg = mesh_config(8, 8, 2, 2)
    machine = build_machine(cfg, "tdnuca")
    ext = build_runtime(machine, "tdnuca")
    Executor(machine, extension=ext).run(small_program())
    assert ext.stats.replicate_decisions > 0
    # Bank masks never exceed the tile count.
    for rrt in machine.isa.rrts:
        for entry in rrt.entries():
            assert entry.bank_mask < (1 << 64)


def test_whole_chip_cluster_means_single_copy():
    """cluster == mesh: 'replication' degenerates to one spread copy."""
    cfg = mesh_config(4, 4, 4, 4)
    machine = build_machine(cfg, "tdnuca")
    assert machine.mesh.num_clusters == 1
    ext = build_runtime(machine, "tdnuca")
    Executor(machine, extension=ext).run(small_program())
    assert ext.stats.replicate_decisions > 0


def test_non_power_of_two_mesh_rejected_for_interleaving():
    cfg = replace(
        tiny_config(), mesh_width=3, mesh_height=3,
        cluster_width=3, cluster_height=3,
    )
    with pytest.raises(ValueError):
        build_machine(cfg, "tdnuca")
