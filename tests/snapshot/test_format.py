"""Snapshot file format: magic/version/CRC validation and quarantine."""

from __future__ import annotations

import os
import warnings
from pathlib import Path

import pytest

from repro.config import scaled_config
from repro.snapshot import (
    FORMAT_VERSION,
    MAGIC,
    CorruptSnapshotError,
    SnapshotMismatchError,
    config_sha256,
    load_or_quarantine,
    read_snapshot_file,
    verify_meta,
    write_snapshot_file,
)

PAYLOAD = {
    "meta": {"workload": "kmeans", "policy": "tdnuca", "seed": 0},
    "machine": {"counters": [1, 2, 3]},
}


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        path = tmp_path / "run.snap"
        assert write_snapshot_file(path, PAYLOAD) == path
        assert read_snapshot_file(path) == PAYLOAD

    def test_header_layout(self, tmp_path):
        path = tmp_path / "run.snap"
        write_snapshot_file(path, PAYLOAD)
        raw = path.read_bytes()
        assert raw.startswith(MAGIC)
        version = int.from_bytes(raw[len(MAGIC) : len(MAGIC) + 4], "little")
        assert version == FORMAT_VERSION

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_snapshot_file(tmp_path / "absent.snap")


class TestCorruption:
    def _write(self, tmp_path) -> Path:
        path = tmp_path / "run.snap"
        write_snapshot_file(path, PAYLOAD)
        return path

    def test_bad_magic(self, tmp_path):
        path = self._write(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptSnapshotError, match="magic"):
            read_snapshot_file(path)

    def test_unsupported_version(self, tmp_path):
        path = self._write(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[len(MAGIC)] = 99
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptSnapshotError, match="version"):
            read_snapshot_file(path)

    def test_payload_bit_flip_fails_crc(self, tmp_path):
        path = self._write(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x01  # single bit of rot in the payload
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptSnapshotError, match="checksum"):
            read_snapshot_file(path)

    def test_truncated_header(self, tmp_path):
        path = self._write(tmp_path)
        path.write_bytes(path.read_bytes()[:4])
        with pytest.raises(CorruptSnapshotError, match="truncated"):
            read_snapshot_file(path)

    def test_non_dict_payload(self, tmp_path):
        path = tmp_path / "run.snap"
        write_snapshot_file(path, ["not", "a", "dict"])
        with pytest.raises(CorruptSnapshotError, match="not a snapshot"):
            read_snapshot_file(path)


class TestErrorMessagesNameTheEvidence:
    """A corrupt-snapshot report must say *which file* and *what was found*,
    not just that something failed — that's the difference between a
    five-second diagnosis and an strace session."""

    def _write(self, tmp_path) -> Path:
        path = tmp_path / "evidence.snap"
        write_snapshot_file(path, PAYLOAD)
        return path

    def test_bad_magic_names_path_and_actual_bytes(self, tmp_path):
        path = self._write(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[:4] = b"EVIL"
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptSnapshotError) as exc:
            read_snapshot_file(path)
        msg = str(exc.value)
        assert str(path) in msg
        assert "EVIL" in msg          # the magic actually found
        assert repr(MAGIC) in msg     # and the one expected

    def test_truncation_names_path_and_byte_counts(self, tmp_path):
        path = self._write(tmp_path)
        path.write_bytes(path.read_bytes()[:5])
        with pytest.raises(CorruptSnapshotError) as exc:
            read_snapshot_file(path)
        msg = str(exc.value)
        assert str(path) in msg
        assert "5 bytes" in msg

    def test_version_mismatch_names_both_versions(self, tmp_path):
        path = self._write(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[len(MAGIC)] = 42
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptSnapshotError) as exc:
            read_snapshot_file(path)
        msg = str(exc.value)
        assert str(path) in msg
        assert "42" in msg
        assert str(FORMAT_VERSION) in msg

    def test_crc_mismatch_names_path_and_both_checksums(self, tmp_path):
        path = self._write(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptSnapshotError) as exc:
            read_snapshot_file(path)
        msg = str(exc.value)
        assert str(path) in msg
        # Both the computed and the recorded crc32, as 0x-prefixed hex.
        assert msg.count("0x") == 2

    def test_unpicklable_payload_names_path(self, tmp_path):
        import struct
        import zlib

        path = tmp_path / "evidence.snap"
        bogus = b"\x80\x05not really a pickle"
        crc = zlib.crc32(bogus) & 0xFFFFFFFF
        path.write_bytes(
            MAGIC + struct.pack("<II", FORMAT_VERSION, crc) + bogus
        )
        with pytest.raises(CorruptSnapshotError, match="evidence.snap"):
            read_snapshot_file(path)


class TestQuarantine:
    def test_corrupt_file_renamed_and_warned(self, tmp_path):
        path = tmp_path / "run.snap"
        write_snapshot_file(path, PAYLOAD)
        raw = bytearray(path.read_bytes())
        raw[-2] ^= 0x40
        path.write_bytes(bytes(raw))
        with pytest.warns(UserWarning, match="corrupt snapshot"):
            assert load_or_quarantine(path) is None
        assert not path.exists()
        assert (tmp_path / "run.snap.corrupt").exists()

    def test_valid_file_untouched(self, tmp_path):
        path = tmp_path / "run.snap"
        write_snapshot_file(path, PAYLOAD)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert load_or_quarantine(path) == PAYLOAD
        assert path.exists()

    def test_missing_file_returns_none(self, tmp_path):
        assert load_or_quarantine(tmp_path / "absent.snap") is None


class TestVerifyMeta:
    def _payload(self, cfg):
        return {
            "meta": {
                "workload": "kmeans",
                "policy": "tdnuca",
                "seed": 3,
                "config_sha256": config_sha256(cfg),
            }
        }

    def test_match_passes(self):
        cfg = scaled_config(1 / 1024)
        verify_meta(
            self._payload(cfg),
            workload="kmeans", policy="tdnuca", seed=3, cfg=cfg,
        )

    @pytest.mark.parametrize(
        "kwargs, what",
        [
            ({"workload": "lu"}, "workload"),
            ({"policy": "snuca"}, "policy"),
            ({"seed": 4}, "seed"),
        ],
    )
    def test_identity_mismatch_raises(self, kwargs, what):
        cfg = scaled_config(1 / 1024)
        expected = dict(workload="kmeans", policy="tdnuca", seed=3, cfg=cfg)
        expected.update(kwargs)
        with pytest.raises(SnapshotMismatchError, match=what):
            verify_meta(self._payload(cfg), **expected)

    def test_config_mismatch_raises(self):
        cfg = scaled_config(1 / 1024)
        other = scaled_config(1 / 64)
        with pytest.raises(SnapshotMismatchError, match="config_sha256"):
            verify_meta(
                self._payload(cfg),
                workload="kmeans", policy="tdnuca", seed=3, cfg=other,
            )

    def test_mismatch_is_a_value_error(self):
        # The harness classifies ValueError as permanent (no pointless
        # retries for a snapshot that can never match).
        assert issubclass(SnapshotMismatchError, ValueError)


class TestAtomicWriteDurability:
    def test_parent_directory_fsynced(self, tmp_path, monkeypatch):
        """The rename is made durable: the parent dir is fsynced after
        os.replace (a crash right after atomic_write returns must not lose
        the directory entry)."""
        from repro import ioutils

        synced: list[int] = []
        real_fsync = os.fsync

        def spy_fsync(fd):
            synced.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(ioutils.os, "fsync", spy_fsync)
        target = tmp_path / "out.snap"
        with ioutils.atomic_write(target, "wb") as fh:
            fh.write(b"payload")
        assert target.read_bytes() == b"payload"
        # One fsync for the temp file's contents, one for the parent
        # directory entry after the rename.
        assert len(synced) >= 2

    def test_directory_fsync_failure_is_survivable(self, tmp_path, monkeypatch):
        """Filesystems that cannot fsync a directory (some network mounts)
        must not break atomic_write — only the data fsync is load-bearing."""
        import stat

        from repro import ioutils

        real_fsync = os.fsync

        def dir_hostile_fsync(fd):
            if stat.S_ISDIR(os.fstat(fd).st_mode):
                raise OSError("directory fsync not supported here")
            return real_fsync(fd)

        monkeypatch.setattr(ioutils.os, "fsync", dir_hostile_fsync)
        target = tmp_path / "out.txt"
        with ioutils.atomic_write(target) as fh:
            fh.write("hello")
        assert target.read_text() == "hello"

    def test_unopenable_directory_is_survivable(self, tmp_path, monkeypatch):
        from repro import ioutils

        real_open = os.open

        def dir_hostile_open(path, flags, *args, **kwargs):
            if Path(path).is_dir():
                raise OSError("cannot open directories")
            return real_open(path, flags, *args, **kwargs)

        monkeypatch.setattr(ioutils.os, "open", dir_hostile_open)
        target = tmp_path / "out.txt"
        with ioutils.atomic_write(target) as fh:
            fh.write("hello")
        assert target.read_text() == "hello"
