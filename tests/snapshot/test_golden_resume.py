"""Interrupt-and-resume byte-identity over the golden case matrix.

For every committed golden configuration (all six policies across three
workloads, plus the fault-injected runs), preempt the simulation after a
handful of tasks, resume it from the snapshot file, and require the final
canonical statistics to match the committed ``tests/golden/*.json``
snapshot exactly — the same oracle the hot-path optimizations answer to.
A resumed run that drifts by a single counter fails here.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import _run_one
from repro.experiments.golden import GOLDEN_CASES, canonical_stats
from repro.snapshot import Checkpointer, PreemptedError

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"

#: early enough to land inside warmup for small runs, exercising the
#: warmup-segment snapshot path as well as the main one.
PREEMPT_AT = 4


@pytest.mark.parametrize(
    "case", GOLDEN_CASES, ids=[c.case_id for c in GOLDEN_CASES]
)
def test_interrupted_run_resumes_to_golden_stats(tmp_path, case):
    golden_path = GOLDEN_DIR / f"{case.case_id}.json"
    assert golden_path.exists(), f"missing golden snapshot {golden_path}"
    expected = json.loads(golden_path.read_text())

    snap = tmp_path / f"{case.case_id}.snap"
    ck = Checkpointer(snap, preempt_after_tasks=PREEMPT_AT)
    with pytest.raises(PreemptedError) as err:
        _run_one(
            case.workload, case.policy, case.config(),
            seed=case.seed, checkpoint=ck,
        )
    assert err.value.path == snap and snap.exists()

    resumed = _run_one(
        case.workload, case.policy, case.config(),
        seed=case.seed, resume_from=snap,
    )
    assert resumed.extra["resumed_from_task"] == PREEMPT_AT
    # JSON round-trip the resumed stats exactly as the committed snapshot
    # was produced, then require equality down to the last counter.
    actual = json.loads(json.dumps(canonical_stats(resumed), sort_keys=True))
    assert actual == expected, (
        f"{case.case_id}: resumed statistics diverged from the golden "
        "snapshot"
    )
