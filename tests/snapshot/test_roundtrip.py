"""Snapshot round-trip properties, across every policy, faulted and traced.

Two invariants:

* ``load_state_dict`` is a true inverse of ``state_dict``: restoring a
  snapshot into a freshly built machine reproduces the exact same state
  dict, byte for byte.
* Preempting a run at a task boundary and resuming it from the snapshot
  file produces canonical statistics identical to the uninterrupted run —
  with fault injection active and an observer attached, i.e. with every
  optional stateful subsystem in play.
"""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.experiments.golden import canonical_stats
from repro.sim.machine import POLICIES, build_machine
from repro.snapshot import (
    Checkpointer,
    PreemptedError,
    read_snapshot_file,
    write_snapshot_file,
)

SCALE = 1 / 1024
FAULTS = "bank:3@task=2,link:1-2@task=4,dram:transient:p=0.02:retries=4"
PREEMPT_AT = 6


def _preempted_snapshot(tmp_path, policy):
    """Run kmeans under ``policy`` until the preemption trigger fires."""
    session = Session(scale=SCALE)
    path = tmp_path / f"{policy}.snap"
    ck = Checkpointer(path, preempt_after_tasks=PREEMPT_AT)
    with pytest.raises(PreemptedError) as err:
        session.run("kmeans", policy, trace=True, faults=FAULTS, checkpoint=ck)
    assert err.value.path == path
    return path


@pytest.mark.parametrize("policy", POLICIES)
def test_state_dict_roundtrip_is_identity(tmp_path, policy):
    path = _preempted_snapshot(tmp_path, policy)
    payload = read_snapshot_file(path)

    # File-level round trip: rewriting the payload reproduces it exactly.
    copy = tmp_path / "copy.snap"
    write_snapshot_file(copy, payload)
    assert read_snapshot_file(copy) == payload

    # Machine-level round trip: a fresh machine restored from the state
    # dict re-emits the identical state dict.  The snapshotting run was
    # traced, so the fresh machine needs an observer attached for the obs
    # section to be restored rather than dropped.
    from repro.obs.observer import Observer

    session = Session(scale=SCALE)
    cfg = session._configured(FAULTS, False)
    machine = build_machine(cfg, policy, seed=0)
    Observer().attach(machine)
    machine.load_state_dict(payload["machine"])
    assert machine.state_dict() == payload["machine"]


@pytest.mark.parametrize("policy", POLICIES)
def test_preempt_resume_stats_identical(tmp_path, policy):
    session = Session(scale=SCALE)
    reference = session.run("kmeans", policy, trace=True, faults=FAULTS)
    ref_stats = canonical_stats(reference)

    path = _preempted_snapshot(tmp_path, policy)
    resumed = session.run(
        "kmeans", policy, trace=True, faults=FAULTS, resume_from=path
    )
    assert resumed.extra["resumed_from_task"] == PREEMPT_AT
    assert canonical_stats(resumed) == ref_stats
