"""Per-bank LLC load analysis."""

import pytest

from repro.cache.llc import NucaLLC
from repro.noc.topology import Mesh
from repro.stats.bankload import bank_access_shares, load_imbalance, mesh_heatmap

MESH = Mesh(4, 4)


def make_llc():
    return NucaLLC(16, 1024, 4, 64)


class TestShares:
    def test_empty(self):
        shares = bank_access_shares(make_llc())
        assert shares == [0.0] * 16

    def test_shares_sum_to_one(self):
        llc = make_llc()
        llc.access(0, 1, False)
        llc.access(0, 2, False)
        llc.access(5, 3, False)
        shares = bank_access_shares(llc)
        assert sum(shares) == pytest.approx(1.0)
        assert shares[0] == pytest.approx(2 / 3)

    def test_uniform_balance(self):
        llc = make_llc()
        for bank in range(16):
            llc.access(bank, bank, False)
        assert load_imbalance(llc) == pytest.approx(1.0)

    def test_concentrated_imbalance(self):
        llc = make_llc()
        for _ in range(16):
            llc.access(3, 1, False)
        assert load_imbalance(llc) == pytest.approx(16.0)

    def test_empty_imbalance_is_one(self):
        assert load_imbalance(make_llc()) == 1.0


class TestHeatmap:
    def test_layout(self):
        llc = make_llc()
        llc.access(0, 1, False)
        out = mesh_heatmap(llc, MESH, "title")
        lines = out.splitlines()
        assert lines[0] == "title"
        assert len(lines) == 6  # title + 4 rows + imbalance
        assert "imbalance" in lines[-1]

    def test_percentages_present(self):
        llc = make_llc()
        for bank in range(16):
            llc.access(bank, bank, False)
        out = mesh_heatmap(llc, MESH)
        assert out.count("6.2%") + out.count("6.3%") == 16
