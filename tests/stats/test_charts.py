"""ASCII chart rendering."""

from repro.stats.charts import bar_chart, grouped_bar_chart


class TestBarChart:
    def test_scales_to_max(self):
        out = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        a_line, b_line = out.splitlines()
        assert b_line.count("█") == 10
        assert a_line.count("█") == 5

    def test_labels_aligned(self):
        out = bar_chart({"x": 1.0, "longname": 1.0})
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_values_printed(self):
        out = bar_chart({"a": 1.234}, fmt="{:.2f}")
        assert "1.23" in out

    def test_title_and_reference(self):
        out = bar_chart({"a": 1.0}, title="T", reference=2.0)
        assert out.splitlines()[0] == "T"
        assert "(reference)" in out

    def test_empty(self):
        assert bar_chart({}, title="T") == "T"

    def test_zero_values(self):
        out = bar_chart({"a": 0.0})
        assert "█" not in out


class TestGroupedBarChart:
    def test_structure(self):
        out = grouped_bar_chart(
            {"b1": {"s1": 1.0, "s2": 2.0}, "b2": {"s1": 0.5, "s2": 1.5}}
        )
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("b1")
        assert lines[1].startswith(" ")  # continuation row
        assert lines[2].startswith("b2")

    def test_shared_scale(self):
        out = grouped_bar_chart(
            {"b1": {"s": 4.0}, "b2": {"s": 2.0}}, width=8
        )
        l1, l2 = out.splitlines()
        assert l1.count("█") == 8
        assert l2.count("█") == 4

    def test_empty(self):
        assert grouped_bar_chart({}, title="T") == "T"


class TestFigureChart:
    def test_figure_to_chart(self):
        from repro.experiments.figures import Figure, FigureSeries

        fig = Figure(
            "Fig.X",
            "demo",
            [FigureSeries("a", {"w1": 1.0, "w2": 2.0})],
        )
        out = fig.to_chart(width=10)
        assert "Fig.X" in out
        assert "AVG" in out
