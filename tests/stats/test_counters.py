"""Block census (the Fig.-3 left-bar machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.counters import BlockCensus


def record(census, core, blocks, writes=None):
    arr = np.asarray(blocks, dtype=np.int64)
    w = np.zeros(len(arr), dtype=bool) if writes is None else np.asarray(writes)
    census.record(core, arr, w)


class TestClassification:
    def test_single_core_is_private(self):
        c = BlockCensus(16)
        record(c, 3, [1, 2, 3], [True, False, False])
        census = c.rnuca_census()
        assert census.private == 3
        assert census.shared == 0

    def test_multi_core_clean_is_shared_ro(self):
        c = BlockCensus(16)
        record(c, 0, [1])
        record(c, 1, [1])
        assert c.rnuca_census().shared_read_only == 1

    def test_multi_core_written_is_shared(self):
        c = BlockCensus(16)
        record(c, 0, [1], [True])
        record(c, 1, [1])
        assert c.rnuca_census().shared == 1

    def test_write_by_any_core_counts(self):
        c = BlockCensus(16)
        record(c, 0, [1])
        record(c, 1, [1], [True])
        assert c.rnuca_census().shared == 1

    def test_queries(self):
        c = BlockCensus(16)
        record(c, 2, [5], [True])
        record(c, 7, [5])
        assert c.cores_of(5) == [2, 7]
        assert c.was_written(5)
        assert not c.was_written(99)


class TestAggregation:
    def test_unique_blocks(self):
        c = BlockCensus(16)
        record(c, 0, [1, 1, 2, 2, 2])
        assert c.unique_blocks == 2

    def test_write_aggregated_within_trace(self):
        c = BlockCensus(16)
        record(c, 0, [7, 7], [False, True])
        assert c.was_written(7)

    def test_touched_blocks(self):
        c = BlockCensus(16)
        record(c, 0, [3, 1])
        assert sorted(c.touched_blocks().tolist()) == [1, 3]

    def test_fractions_sum_to_one(self):
        c = BlockCensus(16)
        record(c, 0, [1, 2], [True, False])
        record(c, 1, [2, 3])
        fr = c.rnuca_census().fractions()
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_empty_trace_noop(self):
        c = BlockCensus(16)
        record(c, 0, [])
        assert c.unique_blocks == 0

    def test_bad_core(self):
        c = BlockCensus(4)
        with pytest.raises(ValueError):
            record(c, 4, [1])


@given(
    st.lists(
        st.tuples(
            st.integers(0, 3),
            st.lists(st.tuples(st.integers(0, 30), st.booleans()), min_size=1, max_size=20),
        ),
        max_size=20,
    )
)
@settings(max_examples=50, deadline=None)
def test_census_matches_reference(traces):
    """Vectorized census agrees with a naive per-access model."""
    census = BlockCensus(4)
    ref: dict[int, tuple[set, bool]] = {}
    for core, accesses in traces:
        blocks = [b for b, _ in accesses]
        writes = [w for _, w in accesses]
        record(census, core, blocks, writes)
        for b, w in accesses:
            cores, written = ref.get(b, (set(), False))
            cores.add(core)
            ref[b] = (cores, written or w)
    assert census.unique_blocks == len(ref)
    priv = sum(1 for cores, _ in ref.values() if len(cores) == 1)
    ro = sum(1 for cores, w in ref.values() if len(cores) > 1 and not w)
    sh = sum(1 for cores, w in ref.values() if len(cores) > 1 and w)
    got = census.rnuca_census()
    assert (got.private, got.shared_read_only, got.shared) == (priv, ro, sh)
