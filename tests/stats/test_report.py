"""Report formatting helpers."""

import pytest

from repro.stats.report import format_table, geomean, normalize_series


class TestFormatTable:
    def test_alignment_and_rows(self):
        text = format_table(["a", "bench"], [["1", "x"], ["22", "yy"]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bench" in lines[1]
        assert len(lines) == 5

    def test_no_title(self):
        text = format_table(["h"], [["v"]])
        assert text.splitlines()[0].startswith("h")


class TestNormalize:
    def test_ratios(self):
        out = normalize_series({"a": 2.0, "b": 6.0}, {"a": 4.0, "b": 3.0})
        assert out == {"a": 0.5, "b": 2.0}

    def test_zero_baseline(self):
        assert normalize_series({"a": 5.0}, {"a": 0.0}) == {"a": 0.0}

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            normalize_series({"a": 1.0}, {})


class TestGeomean:
    def test_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_identity(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_ignores_nonpositive(self):
        assert geomean([2.0, 0.0, -1.0, 8.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geomean([]) == 0.0
