"""The repro.api session facade and the deprecation shims over it."""

import warnings

import pytest

import repro
from repro.api import RunResult, Session
from repro.config import scaled_config
from repro.experiments.runner import (
    ExperimentResult,
    run_experiment,
    run_suite,
)
from repro.experiments.serialize import result_to_dict

CFG = scaled_config(1 / 1024)


class TestSessionConstruction:
    def test_reexported_from_package_root(self):
        assert repro.Session is Session
        assert repro.RunResult is RunResult

    def test_config_and_scale_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            Session(CFG, scale=1 / 64)

    def test_scale_builds_a_scaled_config(self):
        s = Session(scale=1 / 1024)
        assert s.config.llc_bank_bytes == CFG.llc_bank_bytes

    def test_default_is_the_calibrated_scale(self):
        assert Session().config.llc_bank_bytes == scaled_config(1 / 64).llc_bank_bytes

    def test_invalid_config_rejected_at_construction(self):
        from dataclasses import replace

        bad = replace(CFG, l1_bytes=-1)
        with pytest.raises(ValueError):
            Session(bad)


class TestSessionRun:
    def test_returns_runresult_delegating_stats(self):
        r = Session(CFG).run("md5", "tdnuca")
        assert isinstance(r, RunResult)
        assert isinstance(r.experiment, ExperimentResult)
        assert r.makespan == r.experiment.makespan
        assert r.machine.llc_accesses > 0
        assert r.workload == "md5" and r.policy == "tdnuca"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            Session(CFG).run("md5", "nonsense")

    def test_per_run_seed_overrides_session_seed(self):
        s = Session(CFG, seed=1)
        a = s.run("kmeans", "snuca")
        b = s.run("kmeans", "snuca", seed=2)
        c = Session(CFG, seed=2).run("kmeans", "snuca")
        assert a.makespan != b.makespan
        assert b.makespan == c.makespan

    def test_faults_do_not_leak_into_session_config(self):
        s = Session(CFG)
        faulted = s.run("md5", "snuca", faults="bank:5@task=10")
        clean = s.run("md5", "snuca")
        assert s.config.fault_spec == ""
        assert faulted.machine.faults is not None
        assert clean.machine.faults is None


class TestDeprecationShims:
    def test_run_experiment_warns_exactly_once_per_call(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run_experiment("md5", "snuca", CFG)
        deps = [w for w in caught if w.category is DeprecationWarning]
        assert len(deps) == 1
        assert "Session" in str(deps[0].message)
        assert isinstance(result, ExperimentResult)

    def test_shim_results_identical_to_facade(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            via_shim = run_experiment("md5", "tdnuca", CFG, seed=4)
        via_facade = Session(CFG).run("md5", "tdnuca", seed=4)
        assert result_to_dict(via_shim) == result_to_dict(via_facade.experiment)

    def test_run_suite_warns_and_matches_suite(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            via_shim = run_suite(["md5"], ["snuca", "tdnuca"], CFG)
        deps = [w for w in caught if w.category is DeprecationWarning]
        assert len(deps) == 1 and "Session" in str(deps[0].message)
        via_facade = Session(CFG).suite(["md5"], ["snuca", "tdnuca"])
        assert list(via_shim) == list(via_facade)  # grid order preserved
        for key, shim_result in via_shim.items():
            assert result_to_dict(shim_result) == result_to_dict(
                via_facade[key]
            )

    def test_facade_path_emits_no_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Session(CFG).run("md5", "snuca")
            Session(CFG).suite(["md5"], ["snuca"])


class TestSessionSweep:
    def test_sweep_returns_outcome(self):
        outcome = Session(CFG).sweep(["md5"], ["snuca", "tdnuca"])
        assert outcome.ok == 2 and outcome.failed == 0
        assert set(outcome.results()) == {("md5", "snuca"), ("md5", "tdnuca")}

    def test_traced_sweep_writes_one_trace_per_job(self, tmp_path):
        import json

        trace_dir = tmp_path / "traces"
        outcome = Session(CFG).sweep(
            ["md5"], ["snuca"], trace_dir=trace_dir, sample_every=16
        )
        assert outcome.ok == 1
        doc = json.loads((trace_dir / "md5-snuca.trace.json").read_text())
        assert doc["traceEvents"]
        run = outcome.result_dicts()[("md5", "snuca")]
        assert "trace" in run and "timeline" in run
