"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_validates_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nbody", "tdnuca"])

    def test_run_validates_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "md5", "hnuca"])


class TestVersion:
    def test_version_flag_prints_the_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"

    def test_package_version_is_the_single_source(self):
        import repro
        from repro.service.envelope import ok_envelope

        assert ok_envelope({})["version"] == repro.__version__


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8642
        assert args.workers == 2
        assert args.checkpoint_every == 0

    def test_submit_validates_workload_and_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "nbody", "tdnuca"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "md5", "hnuca"])

    def test_submit_against_dead_server_fails_typed(self, capsys):
        # Nothing listens on port 1: the client retries, then reports a
        # typed error on stderr and exits 75 (retryable — try again later).
        rc = main([
            "submit", "md5", "tdnuca", "--scale", "2048",
            "--port", "1",
        ])
        err = capsys.readouterr().err
        assert rc == 75
        assert "error [internal]" in err
        assert "Traceback" not in err


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "md5" in out and "tdnuca" in out

    def test_config(self, capsys):
        assert main(["config", "--scale", "64"]) == 0
        out = capsys.readouterr().out
        assert "16 cores" in out
        assert "RRT" in out

    def test_run_table(self, capsys):
        assert main(["run", "md5", "snuca", "--scale", "2048"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "LLC hit ratio" in out

    def test_run_json(self, capsys):
        assert main(["run", "md5", "tdnuca", "--scale", "2048", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "md5"
        assert payload["tdnuca_runtime"]["bypass"] > 0

    def test_run_deadline_preempts_and_resumes(self, tmp_path, capsys):
        from repro.snapshot import EXIT_PREEMPTED

        snap = tmp_path / "run.snap"
        rc = main(
            [
                "run", "md5", "tdnuca", "--scale", "2048", "--json",
                "--deadline", "0.0001", "--checkpoint-to", str(snap),
            ]
        )
        assert rc == EXIT_PREEMPTED
        assert snap.exists()
        captured = capsys.readouterr()
        assert "--resume-from" in captured.err

        reference = json.loads(
            (
                main(["run", "md5", "tdnuca", "--scale", "2048", "--json"]),
                capsys.readouterr().out,
            )[1]
        )
        rc = main(
            [
                "run", "md5", "tdnuca", "--scale", "2048", "--json",
                "--resume-from", str(snap),
            ]
        )
        assert rc == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed.pop("resumed_from_task") >= 1
        assert resumed == reference

    def test_run_resume_rejects_wrong_identity(self, tmp_path, capsys):
        from repro.snapshot import EXIT_PREEMPTED

        snap = tmp_path / "run.snap"
        rc = main(
            [
                "run", "md5", "tdnuca", "--scale", "2048",
                "--deadline", "0.0001", "--checkpoint-to", str(snap),
            ]
        )
        assert rc == EXIT_PREEMPTED
        with pytest.raises(ValueError, match="mismatch"):
            main(
                [
                    "run", "md5", "snuca", "--scale", "2048",
                    "--resume-from", str(snap),
                ]
            )

    def test_run_with_trace_file(self, tmp_path, capsys):
        trace_file = tmp_path / "run.trace.json"
        rc = main(
            [
                "run", "md5", "tdnuca", "--scale", "2048",
                "--trace", str(trace_file),
            ]
        )
        assert rc == 0
        assert "perfetto" in capsys.readouterr().out
        doc = json.loads(trace_file.read_text())
        assert doc["traceEvents"]

    def test_trace_command(self, tmp_path, capsys):
        trace_file = tmp_path / "t.json"
        events_file = tmp_path / "t.jsonl"
        rc = main(
            [
                "trace", "md5", "tdnuca", "--scale", "2048",
                "--out", str(trace_file), "--events", str(events_file),
                "--sample-every", "16",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "events recorded" in out
        assert "bank access heatmap" in out
        assert "link load heatmap" in out
        doc = json.loads(trace_file.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert "X" in phases and "C" in phases
        assert events_file.read_text().startswith('{"trace_meta"')

    def test_figures_subset(self, capsys):
        rc = main(
            [
                "figures", "--scale", "2048", "--only", "fig8",
                "--workloads", "md5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig.8" in out

    def test_figures_chart_mode(self, capsys):
        rc = main(
            [
                "figures", "--scale", "2048", "--only", "fig8",
                "--workloads", "md5", "--chart",
            ]
        )
        assert rc == 0
        assert "█" in capsys.readouterr().out

    def test_sweep_writes_json(self, tmp_path, capsys):
        out_file = tmp_path / "results.json"
        rc = main(
            [
                "sweep", "--scale", "2048", "--out", str(out_file),
                "--policies", "snuca", "tdnuca",
            ]
        )
        assert rc == 0
        payload = json.loads(out_file.read_text())
        assert payload["schema_version"] == 4
        assert "md5/tdnuca" in payload["runs"]
        assert len(payload["runs"]) == 16  # 8 workloads x 2 policies
        assert payload["failures"] == []
        assert "config_sha256" in payload["sweep"]
        # checkpoints land next to the output by default
        assert (tmp_path / "results.json.d" / "manifest.json").exists()

    def test_sweep_workload_subset_with_faults(self, tmp_path, capsys):
        out_file = tmp_path / "faulted.json"
        rc = main(
            [
                "sweep", "--scale", "2048", "--out", str(out_file),
                "--workloads", "md5", "--policies", "snuca",
                "--faults", "bank:5@task=20", "--strict",
            ]
        )
        assert rc == 0
        payload = json.loads(out_file.read_text())
        assert set(payload["runs"]) == {"md5/snuca"}
        run = payload["runs"]["md5/snuca"]
        assert run["faults"]["banks_failed"] == 1
        assert run["invariants"]["violations"] == 0

    def test_sweep_requires_out_or_resume(self, capsys):
        assert main(["sweep", "--scale", "2048"]) == 2
        assert "--out is required" in capsys.readouterr().out

    def test_sweep_compare_roundtrip(self, tmp_path, capsys):
        """Parallel sweep -> compare with itself is clean (CLI round trip)."""
        out_file = tmp_path / "s.json"
        rc = main(
            [
                "sweep", "--scale", "2048", "--workloads", "md5",
                "--policies", "snuca", "tdnuca", "--jobs", "2",
                "--out", str(out_file), "--run-dir", str(tmp_path / "rd"),
            ]
        )
        assert rc == 0
        assert main(["compare", str(out_file), str(out_file)]) == 0
        assert "no deviations" in capsys.readouterr().out

    def test_sweep_crash_then_resume(self, tmp_path, capsys, monkeypatch):
        """Acceptance: a crashed job degrades gracefully, and a resumed
        sweep merges to the same JSON as a clean one (modulo wall time)."""
        clean, faulted = tmp_path / "clean.json", tmp_path / "faulted.json"
        argv = [
            "sweep", "--scale", "2048", "--workloads", "md5",
            "--policies", "snuca", "tdnuca",
        ]
        assert main(argv + ["--out", str(clean)]) == 0

        monkeypatch.setenv("REPRO_HARNESS_CRASH", "md5/tdnuca")
        rc = main(
            argv
            + ["--out", str(faulted), "--jobs", "2", "--retries", "0",
               "--run-dir", str(tmp_path / "rd")]
        )
        assert rc == 1
        payload = json.loads(faulted.read_text())
        assert set(payload["runs"]) == {"md5/snuca"}
        assert payload["failures"][0]["error"] == "WorkerCrash"
        manifest = json.loads((tmp_path / "rd" / "manifest.json").read_text())
        assert manifest["status"]["md5/tdnuca"]["status"] == "failed"

        monkeypatch.delenv("REPRO_HARNESS_CRASH")
        assert main(["sweep", "--resume", str(tmp_path / "rd")]) == 0
        a = json.loads(clean.read_text())
        b = json.loads(faulted.read_text())
        a["sweep"].pop("wall_time_s")
        b["sweep"].pop("wall_time_s")
        assert a == b

    def test_compare_reports_schema_mismatch(self, tmp_path, capsys):
        versioned = tmp_path / "new.json"
        versioned.write_text(
            json.dumps({"schema_version": 2, "runs": {}, "failures": [],
                        "sweep": {}})
        )
        stale = tmp_path / "old.json"
        stale.write_text(json.dumps({"schema_version": 1, "runs": {}}))
        rc = main(["compare", str(stale), str(versioned)])
        assert rc == 2
        out = capsys.readouterr().out
        assert "schema version mismatch" in out and "old.json" in out

    def test_compare_rejects_unversioned(self, tmp_path, capsys):
        legacy = tmp_path / "legacy.json"
        legacy.write_text('{"md5/snuca": {"makespan_cycles": 1}}')
        rc = main(["compare", str(legacy), str(legacy)])
        assert rc == 2
        assert "unversioned" in capsys.readouterr().out
