"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_validates_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nbody", "tdnuca"])

    def test_run_validates_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "md5", "hnuca"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "md5" in out and "tdnuca" in out

    def test_config(self, capsys):
        assert main(["config", "--scale", "64"]) == 0
        out = capsys.readouterr().out
        assert "16 cores" in out
        assert "RRT" in out

    def test_run_table(self, capsys):
        assert main(["run", "md5", "snuca", "--scale", "2048"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "LLC hit ratio" in out

    def test_run_json(self, capsys):
        assert main(["run", "md5", "tdnuca", "--scale", "2048", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "md5"
        assert payload["tdnuca_runtime"]["bypass"] > 0

    def test_figures_subset(self, capsys):
        rc = main(
            [
                "figures", "--scale", "2048", "--only", "fig8",
                "--workloads", "md5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fig.8" in out

    def test_figures_chart_mode(self, capsys):
        rc = main(
            [
                "figures", "--scale", "2048", "--only", "fig8",
                "--workloads", "md5", "--chart",
            ]
        )
        assert rc == 0
        assert "█" in capsys.readouterr().out

    def test_sweep_writes_json(self, tmp_path, capsys):
        out_file = tmp_path / "results.json"
        rc = main(
            [
                "sweep", "--scale", "2048", "--out", str(out_file),
                "--policies", "snuca", "tdnuca",
            ]
        )
        assert rc == 0
        payload = json.loads(out_file.read_text())
        assert "md5/tdnuca" in payload
        assert len(payload) == 16  # 8 workloads x 2 policies
