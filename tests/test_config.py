"""Configuration defaults, validation and scaling."""

from dataclasses import replace

import pytest

from repro.config import (
    EnergyConfig,
    LatencyConfig,
    SystemConfig,
    paper_config,
    scaled_config,
)


class TestPaperConfig:
    def test_table1_core_count(self):
        cfg = paper_config()
        assert cfg.num_cores == 16
        assert cfg.num_banks == 16

    def test_table1_cache_sizes(self):
        cfg = paper_config()
        assert cfg.l1_bytes == 32 * 1024
        assert cfg.l1_assoc == 8
        assert cfg.llc_bank_bytes == 2 * 1024 * 1024
        assert cfg.llc_assoc == 16
        assert cfg.llc_total_bytes == 32 * 1024 * 1024

    def test_table1_latencies(self):
        lat = paper_config().latency
        assert lat.l1_hit == 2
        assert lat.llc_hit == 15
        assert lat.noc_link == 1
        assert lat.noc_router == 1
        assert lat.rrt_lookup == 1

    def test_table1_structures(self):
        cfg = paper_config()
        assert cfg.tlb_entries == 64
        assert cfg.rrt_entries == 64
        assert cfg.physical_address_bits == 42
        assert cfg.block_bytes == 64
        assert cfg.page_bytes == 4096

    def test_clusters_are_quadrants(self):
        cfg = paper_config()
        assert cfg.num_clusters == 4
        assert cfg.cluster_size == 4

    def test_blocks_per_page(self):
        assert paper_config().blocks_per_page == 64


class TestValidation:
    def test_default_is_valid(self):
        paper_config().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("block_bytes", 48),
            ("page_bytes", 3000),
            ("l1_bytes", 0),
            ("llc_bank_bytes", -4096),
        ],
    )
    def test_non_power_of_two_rejected(self, field, value):
        cfg = replace(SystemConfig(), **{field: value})
        with pytest.raises(ValueError):
            cfg.validate()

    def test_page_must_hold_blocks(self):
        cfg = replace(SystemConfig(), block_bytes=4096, page_bytes=64)
        with pytest.raises(ValueError):
            cfg.validate()

    def test_cluster_must_divide_mesh(self):
        cfg = replace(SystemConfig(), cluster_width=3)
        with pytest.raises(ValueError):
            cfg.validate()

    def test_l1_must_hold_one_set(self):
        cfg = replace(SystemConfig(), l1_bytes=256, l1_assoc=8)
        with pytest.raises(ValueError):
            cfg.validate()

    def test_rrt_entries_positive(self):
        cfg = replace(SystemConfig(), rrt_entries=0)
        with pytest.raises(ValueError):
            cfg.validate()


class TestMeshScaleValidation:
    """The hardened geometry checks behind --mesh/--cluster scale-out."""

    @pytest.mark.parametrize("w,h", [(8, 8), (8, 16), (16, 16), (2, 2)])
    def test_power_of_two_meshes_accepted(self, w, h):
        replace(SystemConfig(), mesh_width=w, mesh_height=h).validate()

    @pytest.mark.parametrize("w,h", [(3, 4), (5, 5), (6, 8), (10, 10)])
    def test_non_power_of_two_tile_count_rejected(self, w, h):
        cfg = replace(
            SystemConfig(), mesh_width=w, mesh_height=h,
            cluster_width=1, cluster_height=1,
        )
        with pytest.raises(ValueError, match="power of two"):
            cfg.validate()

    def test_non_square_power_of_two_mesh_valid(self):
        cfg = replace(SystemConfig(), mesh_width=8, mesh_height=16,
                      cluster_width=4, cluster_height=4)
        cfg.validate()
        assert cfg.num_cores == 128

    def test_oversized_mesh_rejected(self):
        cfg = replace(SystemConfig(), mesh_width=64, mesh_height=64)
        with pytest.raises(ValueError, match="tiles"):
            cfg.validate()

    @pytest.mark.parametrize("cw,ch", [(3, 2), (2, 3), (5, 1)])
    def test_cluster_divisibility_failure_names_values(self, cw, ch):
        cfg = replace(SystemConfig(), mesh_width=8, mesh_height=8,
                      cluster_width=cw, cluster_height=ch)
        with pytest.raises(ValueError) as excinfo:
            cfg.validate()
        # The message must carry the actual numbers, not just the rule.
        assert str(cw) in str(excinfo.value) or str(ch) in str(excinfo.value)

    def test_non_power_of_two_cluster_rejected(self):
        cfg = replace(SystemConfig(), mesh_width=12, mesh_height=12,
                      cluster_width=6, cluster_height=6)
        with pytest.raises(ValueError):
            cfg.validate()

    def test_zero_mesh_rejected(self):
        with pytest.raises(ValueError):
            replace(SystemConfig(), mesh_width=0).validate()

    def test_rrt_pressure_config_at_scale(self):
        # >64-core machine with a deliberately small RRT is a legal
        # (pressure-study) configuration, not a validation error.
        cfg = replace(SystemConfig(), mesh_width=16, mesh_height=16,
                      cluster_width=4, cluster_height=4, rrt_entries=16)
        cfg.validate()
        assert cfg.num_cores == 256
        assert cfg.rrt_entries < cfg.num_cores


class TestScaledConfig:
    def test_identity_scale(self):
        cfg = scaled_config(1.0)
        assert cfg.l1_bytes == 32 * 1024
        assert cfg.llc_bank_bytes == 2 * 1024 * 1024
        assert cfg.page_bytes == 4096

    def test_capacities_scale(self):
        cfg = scaled_config(1 / 64)
        assert cfg.llc_bank_bytes == 32 * 1024
        assert cfg.capacity_scale == pytest.approx(1 / 64)

    def test_page_scales_as_sqrt(self):
        assert scaled_config(1 / 64).page_bytes == 512
        assert scaled_config(1 / 16).page_bytes == 1024

    def test_l1_floor(self):
        assert scaled_config(1 / 1024).l1_bytes == 2048

    def test_page_floor(self):
        assert scaled_config(1 / 4096).page_bytes == 512

    def test_block_size_preserved(self):
        assert scaled_config(1 / 256).block_bytes == 64

    def test_result_is_valid(self):
        for f in (1.0, 0.5, 1 / 64, 1 / 1000):
            scaled_config(f).validate()

    @pytest.mark.parametrize("factor", [0.0, -1.0, 1.5])
    def test_bad_factor_rejected(self, factor):
        with pytest.raises(ValueError):
            scaled_config(factor)


class TestLatencyConfig:
    def test_per_hop_includes_contention(self):
        lat = LatencyConfig(noc_link=1, noc_router=1, noc_contention=2)
        assert lat.noc_per_hop() == 4

    def test_unloaded_per_hop(self):
        lat = LatencyConfig(noc_contention=0)
        assert lat.noc_per_hop() == 2


class TestEnergyConfig:
    def test_rrt_tcam_factor(self):
        e = EnergyConfig(rrt_sram_lookup=1.0, rrt_tcam_factor=30.0)
        assert e.rrt_lookup_energy() == pytest.approx(30.0)

    def test_defaults_ordering(self):
        # LLC events must dwarf L1 events, DRAM must dwarf LLC.
        e = EnergyConfig()
        assert e.l1_access < e.llc_tag_probe < e.llc_read <= e.llc_write
        assert e.dram_access > e.llc_write
