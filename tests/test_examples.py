"""Every shipped example must run to completion.

These are subprocess smoke tests: they execute the example scripts the
way a user would and check for a clean exit and the expected headline
output.  The slower ones are kept honest but bounded by choosing the
quick paths where the script offers one.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=600):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "S-NUCA vs R-NUCA vs TD-NUCA" in out
        assert "RRT occupancy" in out

    def test_custom_workload(self):
        out = run_example("custom_workload.py")
        assert "cluster replicate" in out

    def test_policy_comparison_quick(self):
        out = run_example("policy_comparison.py", "--quick", "--scale", "512")
        assert "Fig.8" in out and "Fig.14" in out

    def test_rrt_sensitivity(self):
        out = run_example("rrt_sensitivity.py")
        assert "RRT latency sensitivity" in out
        assert "RRT capacity ablation" in out

    def test_cholesky_tdg(self, tmp_path):
        dot = tmp_path / "chol.dot"
        out = run_example("cholesky_tdg.py", "--dot", str(dot))
        assert "Cholesky:" in out
        assert dot.read_text().startswith('digraph "cholesky"')

    def test_multiprogramming(self):
        out = run_example("multiprogramming.py")
        assert "PID-tagged" in out
        assert "context" in out
