"""The deterministic failpoint framework: parsing, firing, aliases.

These are tier-1 tests of the framework itself — cheap, no simulation.
The chaos suite (``tests/chaos/``, ``pytest -m chaos``) drives the same
registry through real worker processes.
"""

from __future__ import annotations

import time

import pytest

from repro import failpoints
from repro.failpoints import (
    FailpointError,
    Failpoints,
    PermanentFailpointError,
    parse_spec,
)


@pytest.fixture(autouse=True)
def _clean_registry(monkeypatch):
    """Every test starts from an inactive, env-free registry."""
    for var in (failpoints.FAILPOINTS_ENV, failpoints.FAILPOINTS_SEED_ENV,
                *failpoints.LEGACY_ALIASES):
        monkeypatch.delenv(var, raising=False)
    failpoints.reset()
    yield
    failpoints.reset()


class TestParsing:
    def test_count_probability_and_filters(self):
        rules = parse_spec(
            "worker.crash=1@job:lu/tdnuca; cache.write.torn=*@p:0.25@after:2"
        )
        crash, torn = rules
        assert crash.site == "worker.crash"
        assert crash.count == 1
        assert crash.filters == {"job": "lu/tdnuca"}
        assert crash.action == "kill"  # the site default
        assert torn.count is None
        assert torn.prob == 0.25
        assert torn.after == 2
        assert torn.action == "corrupt"

    def test_action_and_param_overrides(self):
        (rule,) = parse_spec("worker.crash=1@action:raise@param:x")
        assert rule.action == "raise"
        assert rule.param == "x"

    @pytest.mark.parametrize("spec, needle", [
        ("nosuch.site=1", "unknown failpoint site"),
        ("worker.crash", "missing '=COUNT'"),
        ("worker.crash=lots", "integer or '*'"),
        ("worker.crash=-1", ">= 0"),
        ("worker.crash=1@p:2.0", "within \\[0, 1\\]"),
        ("worker.crash=1@action:explode", "unknown action"),
        ("worker.crash=1@badmod", "malformed modifier"),
    ])
    def test_bad_specs_rejected_loudly(self, spec, needle):
        with pytest.raises(ValueError, match=needle):
            parse_spec(spec)

    def test_empty_entries_are_skipped(self):
        assert parse_spec(" ; ;worker.hang=1; ") != []
        assert parse_spec("") == []


class TestFiring:
    def test_count_budget_limits_firings(self):
        fp = Failpoints(parse_spec("worker.hang=2@param:0"))
        fired = [fp.fire("worker.hang") for _ in range(4)]
        assert fired == [True, True, False, False]
        assert fp.stats()["worker.hang"] == {"hits": 4, "fired": 2}

    def test_after_skips_leading_hits(self):
        fp = Failpoints(parse_spec("worker.hang=*@after:2@param:0"))
        fired = [fp.fire("worker.hang") for _ in range(4)]
        assert fired == [False, False, True, True]

    def test_exact_filter_and_numeric_ge_filter(self):
        fp = Failpoints(parse_spec(
            "worker.hang=*@job:lu/tdnuca@attempt:1@task_ge:10@param:0"
        ))
        assert not fp.fire("worker.hang", job="md5/snuca", attempt=1, task=50)
        assert not fp.fire("worker.hang", job="lu/tdnuca", attempt=2, task=50)
        assert not fp.fire("worker.hang", job="lu/tdnuca", attempt=1, task=9)
        assert fp.fire("worker.hang", job="lu/tdnuca", attempt=1, task=10)
        # Missing or non-numeric context never matches a _ge filter.
        assert not fp.fire("worker.hang", job="lu/tdnuca", attempt=1)

    def test_probability_is_seed_deterministic(self):
        def draw(seed):
            fp = Failpoints(parse_spec("worker.hang=*@p:0.5@param:0", seed))
            return [fp.fire("worker.hang") for _ in range(32)]

        assert draw(7) == draw(7)
        assert draw(7) != draw(8)
        assert any(draw(7)) and not all(draw(7))

    def test_unmatched_site_is_inert(self):
        fp = Failpoints(parse_spec("worker.hang=1@param:0"))
        assert not fp.fire("worker.crash")
        assert Failpoints([]).active is False

    def test_raise_actions_are_classified(self):
        fp = Failpoints(parse_spec(
            "worker.hang=1@action:raise;worker.oom=1@action:raise-permanent"
        ))
        with pytest.raises(FailpointError):
            fp.fire("worker.hang")
        with pytest.raises(PermanentFailpointError):
            fp.fire("worker.oom")
        # The classifier contract the queue's retry logic relies on:
        assert issubclass(FailpointError, RuntimeError)       # transient
        assert issubclass(PermanentFailpointError, ValueError)  # permanent

    def test_sleep_action_honours_param(self):
        fp = Failpoints(parse_spec("worker.hang=1@param:0.05"))
        t0 = time.monotonic()
        assert fp.fire("worker.hang")
        assert 0.04 <= time.monotonic() - t0 < 1.0

    def test_oom_action_raises_memory_error_capped(self):
        fp = Failpoints(parse_spec("worker.oom=1@param:32"))
        with pytest.raises(MemoryError, match="memory"):
            fp.fire("worker.oom")


class TestMangle:
    def test_mangle_flips_exactly_one_byte_deterministically(self):
        data = bytes(range(256)) * 4
        fp = Failpoints(parse_spec("cache.write.torn=*", seed=3))
        mangled = fp.mangle("cache.write.torn", data)
        assert mangled != data
        assert len(mangled) == len(data)
        assert sum(a != b for a, b in zip(mangled, data)) == 1
        fp2 = Failpoints(parse_spec("cache.write.torn=*", seed=3))
        assert fp2.mangle("cache.write.torn", data) == mangled

    def test_fire_ignores_corrupt_rules_and_mangle_ignores_others(self):
        fp = Failpoints(parse_spec("cache.write.torn=*;worker.hang=*@param:0"))
        assert not fp.fire("cache.write.torn")
        assert fp.mangle("worker.hang", b"abc") == b"abc"
        assert fp.fire("worker.hang")

    def test_inactive_mangle_is_identity(self):
        assert failpoints.mangle("cache.write.torn", b"xyz") == b"xyz"


class TestModuleState:
    def test_env_changes_are_picked_up(self, monkeypatch):
        assert not failpoints.get().active
        monkeypatch.setenv(failpoints.FAILPOINTS_ENV, "worker.hang=1@param:0")
        assert failpoints.get().active
        assert failpoints.active_spec() == ("worker.hang=1@param:0", 0)
        monkeypatch.delenv(failpoints.FAILPOINTS_ENV)
        assert not failpoints.get().active

    def test_env_seed_feeds_probability(self, monkeypatch):
        monkeypatch.setenv(failpoints.FAILPOINTS_ENV, "worker.hang=1@param:0")
        monkeypatch.setenv(failpoints.FAILPOINTS_SEED_ENV, "42")
        assert failpoints.active_spec() == ("worker.hang=1@param:0", 42)
        monkeypatch.setenv(failpoints.FAILPOINTS_SEED_ENV, "not-a-number")
        with pytest.raises(ValueError, match="must be an integer"):
            failpoints.get()

    def test_configure_overrides_env_until_reset(self, monkeypatch):
        monkeypatch.setenv(failpoints.FAILPOINTS_ENV, "worker.hang=1@param:0")
        failpoints.configure("worker.oom=1@action:raise")
        fp = failpoints.get()
        assert "worker.oom" in fp.spec and "worker.hang" not in fp.spec
        failpoints.reset()
        assert "worker.hang" in failpoints.get().spec


class TestLegacyAliases:
    def test_harness_crash_env_translates_with_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_HARNESS_CRASH", "lu/tdnuca")
        with pytest.warns(DeprecationWarning, match="REPRO_HARNESS_CRASH"):
            fp = failpoints.get()
        rules = fp._by_site["harness.worker.crash"]
        assert rules[0].filters == {"job": "lu/tdnuca"}
        assert rules[0].action == "exit"  # preserves the old os._exit(99)
        # Warned once per reset, not on every get().
        import warnings as _w
        with _w.catch_warnings(record=True) as seen:
            _w.simplefilter("always")
            failpoints.get()
        assert not seen

    def test_service_slow_env_translates_to_sleep_param(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_SLOW", "0.05")
        with pytest.warns(DeprecationWarning, match="REPRO_SERVICE_SLOW"):
            t0 = time.monotonic()
            assert failpoints.fire("queue.attempt.slow", job="x/y")
        assert time.monotonic() - t0 >= 0.04

    def test_zero_valued_slow_env_stays_inert(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_SLOW", "0")
        assert not failpoints.get().active

    def test_alias_combines_with_explicit_spec(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_CRASH", "a/b")
        monkeypatch.setenv(failpoints.FAILPOINTS_ENV, "worker.hang=1@param:0")
        with pytest.warns(DeprecationWarning):
            fp = failpoints.get()
        assert "queue.attempt.crash" in fp._by_site
        assert "worker.hang" in fp._by_site


class TestDataPathIntegration:
    def test_torn_cache_write_is_quarantined_on_read(self, tmp_path):
        from repro.service.cache import ResultCache

        cache = ResultCache(tmp_path)
        failpoints.configure("cache.write.torn=1")
        cache.put("k" * 64, {"makespan_cycles": 1})
        with pytest.warns(UserWarning, match="corrupt cache entry"):
            assert cache.get("k" * 64) is None
        assert cache.corrupt == 1
        failpoints.reset()
        cache.put("k" * 64, {"makespan_cycles": 1})
        assert cache.get("k" * 64) == {"makespan_cycles": 1}

    def test_corrupt_snapshot_read_quarantines_and_falls_back(self, tmp_path):
        from repro.snapshot.format import (
            load_or_quarantine,
            read_snapshot_file,
            write_snapshot_file,
        )

        path = tmp_path / "x.snap"
        write_snapshot_file(path, {"meta": {"workload": "md5"}})
        assert read_snapshot_file(path)["meta"]["workload"] == "md5"
        failpoints.configure("snapshot.read.corrupt=1")
        with pytest.warns(UserWarning, match="corrupt snapshot"):
            assert load_or_quarantine(path) is None
        assert path.with_name(path.name + ".corrupt").exists()

    def test_torn_snapshot_write_detected_at_read(self, tmp_path):
        from repro.snapshot.format import (
            CorruptSnapshotError,
            read_snapshot_file,
            write_snapshot_file,
        )

        path = tmp_path / "y.snap"
        failpoints.configure("snapshot.write.torn=1")
        write_snapshot_file(path, {"meta": {"workload": "md5"}})
        failpoints.reset()
        with pytest.raises(CorruptSnapshotError):
            read_snapshot_file(path)
