"""Failure injection: the system must degrade gracefully, never break.

The paper's design guarantees functionality is preserved when resources
run out — full RRTs fall back to S-NUCA interleaving, tiny TLBs just
re-walk, fragmented page tables only cost RRT entries.  These tests
starve each resource and check both completion and graceful degradation.
"""

from dataclasses import replace

import pytest

from repro.config import scaled_config
from repro.experiments.runner import run_experiment

CFG = scaled_config(1 / 2048)


class TestStarvedRRT:
    def test_one_entry_rrt_still_completes(self):
        cfg = replace(CFG, rrt_entries=1)
        r = run_experiment("lu", "tdnuca", cfg)
        assert r.execution.tasks_executed > 0
        assert r.runtime.occupancy_max <= 1

    def test_starved_rrt_converges_to_snuca_distance(self):
        """With (almost) nothing tracked, TD-NUCA behaves like S-NUCA."""
        starved = run_experiment("lu", "tdnuca", replace(CFG, rrt_entries=1))
        snuca = run_experiment("lu", "snuca", CFG)
        assert (
            abs(starved.machine.mean_nuca_distance - snuca.machine.mean_nuca_distance)
            < 0.8
        )

    def test_work_identical_regardless_of_capacity(self):
        small = run_experiment("kmeans", "tdnuca", replace(CFG, rrt_entries=2))
        large = run_experiment("kmeans", "tdnuca", CFG)
        assert small.machine.l1.accesses == large.machine.l1.accesses


class TestStarvedTLB:
    def test_tiny_tlb_completes_with_low_hit_ratio(self):
        cfg = replace(CFG, tlb_entries=2)
        r = run_experiment("jacobi", "tdnuca", cfg)
        assert r.execution.tasks_executed > 0
        full = run_experiment("jacobi", "tdnuca", CFG)
        assert r.machine.tlb.hit_ratio <= full.machine.tlb.hit_ratio


class TestFragmentedPhysicalMemory:
    def test_full_fragmentation_completes(self):
        r = run_experiment("md5", "tdnuca", CFG, seed=3)
        frag = run_experiment("md5", "tdnuca", CFG, seed=3)
        assert frag.execution.tasks_executed == r.execution.tasks_executed

    def test_fragmentation_costs_rrt_entries_not_correctness(self):
        from repro.sim.machine import build_machine
        from repro.experiments.runner import build_runtime
        from repro.runtime import Executor
        from repro.workloads.registry import get_workload

        occupancies = {}
        for frag in (0.0, 1.0):
            machine = build_machine(CFG, "tdnuca", fragmentation=frag)
            ext = build_runtime(machine, "tdnuca")
            prog = get_workload("jacobi").build(CFG)
            Executor(machine, extension=ext).run(prog)
            occupancies[frag] = ext.stats.occupancy_max
        assert occupancies[1.0] >= occupancies[0.0]


class TestDegenerateCaches:
    def test_minimal_l1(self):
        cfg = replace(CFG, l1_bytes=2048, l1_assoc=8)
        r = run_experiment("md5", "tdnuca", cfg)
        assert r.execution.tasks_executed == 128

    def test_minimal_llc_banks(self):
        cfg = replace(CFG, llc_bank_bytes=16 * 1024)
        for pol in ("snuca", "rnuca", "tdnuca"):
            r = run_experiment("kmeans", pol, cfg)
            assert r.execution.tasks_executed > 0


class TestZeroNondepTraffic:
    def test_runs_without_scratch(self):
        cfg = replace(CFG, nondep_blocks_per_task=0)
        r = run_experiment("md5", "tdnuca", cfg)
        assert r.execution.tasks_executed == 128
        # Without scratch, essentially everything bypasses.
        assert r.machine.llc_accesses < 300


# ---------------------------------------------------------------------------
# Hardware fault axis: injected bank/link/DRAM failures (repro.faults).
# The trace is the work, so fault handling may change *where* data lives and
# *how long* accesses take — never how many references the cores issue.
# ---------------------------------------------------------------------------


def _faulted(workload, policy, spec, seed=0):
    cfg = replace(CFG, fault_spec=spec, strict_invariants=True)
    return run_experiment(workload, policy, cfg, seed=seed)


class TestBankFailure:
    @pytest.mark.parametrize("policy", ["snuca", "rnuca", "dnuca", "tdnuca"])
    def test_midrun_bank_death_preserves_work(self, policy):
        """Every policy completes with the exact same L1 access count and
        a clean invariant report when a bank dies mid-run."""
        healthy = run_experiment("lu", policy, CFG)
        faulted = _faulted("lu", policy, "bank:5@task=20")
        assert faulted.execution.tasks_executed == healthy.execution.tasks_executed
        assert faulted.machine.l1.accesses == healthy.machine.l1.accesses
        assert faulted.machine.faults.banks_failed == 1
        assert faulted.machine.faults.dead_bank_redirects > 0
        assert faulted.machine.extra["invariants"]["violations"] == 0

    @pytest.mark.parametrize("bank", [0, 7, 15])
    def test_any_single_bank_position(self, bank):
        healthy = run_experiment("kmeans", "tdnuca", CFG)
        faulted = _faulted("kmeans", "tdnuca", f"bank:{bank}@task=10")
        assert faulted.machine.l1.accesses == healthy.machine.l1.accesses
        assert faulted.machine.extra["invariants"]["violations"] == 0

    def test_every_workload_survives_a_bank_death(self):
        from repro.workloads.registry import workload_names

        for wl in workload_names():
            healthy = run_experiment(wl, "tdnuca", CFG)
            faulted = _faulted(wl, "tdnuca", "bank:3@task=5")
            assert faulted.machine.l1.accesses == healthy.machine.l1.accesses, wl
            assert faulted.machine.extra["invariants"]["violations"] == 0, wl

    def test_dead_from_start_bank(self):
        faulted = _faulted("md5", "snuca", "bank:2@task=0")
        assert faulted.execution.tasks_executed == 128
        assert faulted.machine.faults.blocks_lost == 0  # bank never filled
        assert faulted.machine.extra["invariants"]["violations"] == 0


class TestLinkFailure:
    @pytest.mark.parametrize("spec", ["link:1-2@task=10", "link:10-14@task=0"])
    def test_single_link_death_preserves_work(self, spec):
        healthy = run_experiment("jacobi", "tdnuca", CFG)
        faulted = _faulted("jacobi", "tdnuca", spec)
        assert faulted.execution.tasks_executed == healthy.execution.tasks_executed
        assert faulted.machine.l1.accesses == healthy.machine.l1.accesses
        assert faulted.machine.faults.links_failed == 1
        assert faulted.machine.faults.mean_hop_inflation > 0
        assert faulted.machine.extra["invariants"]["violations"] == 0


class TestDramTransientErrors:
    def test_errors_slow_the_run_but_change_no_work(self):
        healthy = run_experiment("md5", "snuca", CFG, seed=4)
        faulted = _faulted("md5", "snuca", "dram:transient:p=0.01", seed=4)
        assert faulted.machine.l1.accesses == healthy.machine.l1.accesses
        assert faulted.machine.faults.dram_transient_errors > 0
        assert faulted.machine.faults.dram_retry_cycles > 0
        assert faulted.makespan > healthy.makespan


class TestFaultDeterminism:
    def test_same_seed_same_stats_bit_for_bit(self):
        from repro.experiments.serialize import result_to_dict

        spec = "bank:5@task=10,link:1-2@task=20,dram:transient:p=1e-3"
        a = result_to_dict(_faulted("lu", "tdnuca", spec, seed=11))
        b = result_to_dict(_faulted("lu", "tdnuca", spec, seed=11))
        assert a == b

    def test_different_seed_different_dram_errors(self):
        spec = "dram:transient:p=1e-2"
        a = _faulted("md5", "snuca", spec, seed=1)
        b = _faulted("md5", "snuca", spec, seed=2)
        assert (
            a.machine.faults.dram_transient_errors
            != b.machine.faults.dram_transient_errors
            or a.machine.faults.dram_retry_cycles
            != b.machine.faults.dram_retry_cycles
        )


class TestStrictModeFaultFree:
    @pytest.mark.parametrize("policy", ["snuca", "tdnuca"])
    def test_fault_free_strict_run_is_clean_and_identical(self, policy):
        plain = run_experiment("kmeans", policy, CFG, seed=0)
        strict = run_experiment(
            "kmeans", policy, replace(CFG, strict_invariants=True), seed=0
        )
        inv = strict.machine.extra["invariants"]
        assert inv["violations"] == 0
        assert inv["checks_run"] > 0 and inv["full_sweeps"] >= 1
        # Checking must observe, never perturb, the simulation.
        assert strict.makespan == plain.makespan
        assert strict.machine.l1.accesses == plain.machine.l1.accesses
        assert strict.machine.llc_accesses == plain.machine.llc_accesses
