"""Failure injection: the system must degrade gracefully, never break.

The paper's design guarantees functionality is preserved when resources
run out — full RRTs fall back to S-NUCA interleaving, tiny TLBs just
re-walk, fragmented page tables only cost RRT entries.  These tests
starve each resource and check both completion and graceful degradation.
"""

from dataclasses import replace

import pytest

from repro.config import scaled_config
from repro.experiments.runner import run_experiment

CFG = scaled_config(1 / 2048)


class TestStarvedRRT:
    def test_one_entry_rrt_still_completes(self):
        cfg = replace(CFG, rrt_entries=1)
        r = run_experiment("lu", "tdnuca", cfg)
        assert r.execution.tasks_executed > 0
        assert r.runtime.occupancy_max <= 1

    def test_starved_rrt_converges_to_snuca_distance(self):
        """With (almost) nothing tracked, TD-NUCA behaves like S-NUCA."""
        starved = run_experiment("lu", "tdnuca", replace(CFG, rrt_entries=1))
        snuca = run_experiment("lu", "snuca", CFG)
        assert (
            abs(starved.machine.mean_nuca_distance - snuca.machine.mean_nuca_distance)
            < 0.8
        )

    def test_work_identical_regardless_of_capacity(self):
        small = run_experiment("kmeans", "tdnuca", replace(CFG, rrt_entries=2))
        large = run_experiment("kmeans", "tdnuca", CFG)
        assert small.machine.l1.accesses == large.machine.l1.accesses


class TestStarvedTLB:
    def test_tiny_tlb_completes_with_low_hit_ratio(self):
        cfg = replace(CFG, tlb_entries=2)
        r = run_experiment("jacobi", "tdnuca", cfg)
        assert r.execution.tasks_executed > 0
        full = run_experiment("jacobi", "tdnuca", CFG)
        assert r.machine.tlb.hit_ratio <= full.machine.tlb.hit_ratio


class TestFragmentedPhysicalMemory:
    def test_full_fragmentation_completes(self):
        r = run_experiment("md5", "tdnuca", CFG, seed=3)
        frag = run_experiment("md5", "tdnuca", CFG, seed=3)
        assert frag.execution.tasks_executed == r.execution.tasks_executed

    def test_fragmentation_costs_rrt_entries_not_correctness(self):
        from repro.sim.machine import build_machine
        from repro.experiments.runner import build_runtime
        from repro.runtime import Executor
        from repro.workloads.registry import get_workload

        occupancies = {}
        for frag in (0.0, 1.0):
            machine = build_machine(CFG, "tdnuca", fragmentation=frag)
            ext = build_runtime(machine, "tdnuca")
            prog = get_workload("jacobi").build(CFG)
            Executor(machine, extension=ext).run(prog)
            occupancies[frag] = ext.stats.occupancy_max
        assert occupancies[1.0] >= occupancies[0.0]


class TestDegenerateCaches:
    def test_minimal_l1(self):
        cfg = replace(CFG, l1_bytes=2048, l1_assoc=8)
        r = run_experiment("md5", "tdnuca", cfg)
        assert r.execution.tasks_executed == 128

    def test_minimal_llc_banks(self):
        cfg = replace(CFG, llc_bank_bytes=16 * 1024)
        for pol in ("snuca", "rnuca", "tdnuca"):
            r = run_experiment("kmeans", pol, cfg)
            assert r.execution.tasks_executed > 0


class TestZeroNondepTraffic:
    def test_runs_without_scratch(self):
        cfg = replace(CFG, nondep_blocks_per_task=0)
        r = run_experiment("md5", "tdnuca", cfg)
        assert r.execution.tasks_executed == 128
        # Without scratch, essentially everything bypasses.
        assert r.machine.llc_accesses < 300
