"""End-to-end cross-policy invariants on a tiny suite.

These are the properties that must hold *between* policies for the
reproduction to be meaningful: identical work, conserved data, and the
paper's qualitative orderings.
"""

import pytest

from repro.config import scaled_config
from repro.experiments.runner import run_experiment

CFG = scaled_config(1 / 1024)
POLICIES = ("snuca", "rnuca", "tdnuca")


@pytest.fixture(scope="module")
def results():
    out = {}
    for wl in ("kmeans", "lu"):
        for pol in POLICIES:
            out[(wl, pol)] = run_experiment(wl, pol, CFG)
    return out


class TestWorkConservation:
    @pytest.mark.parametrize("wl", ["kmeans", "lu"])
    def test_same_l1_accesses_under_every_policy(self, results, wl):
        """The program issues the same references regardless of NUCA policy."""
        counts = {p: results[(wl, p)].machine.l1.accesses for p in POLICIES}
        assert len(set(counts.values())) == 1

    @pytest.mark.parametrize("wl", ["kmeans", "lu"])
    def test_same_tasks_executed(self, results, wl):
        counts = {p: results[(wl, p)].execution.tasks_executed for p in POLICIES}
        assert len(set(counts.values())) == 1

    @pytest.mark.parametrize("wl", ["kmeans", "lu"])
    def test_same_unique_blocks(self, results, wl):
        counts = {p: results[(wl, p)].unique_blocks for p in POLICIES}
        assert len(set(counts.values())) == 1


class TestDataConservation:
    @pytest.mark.parametrize("wl", ["kmeans", "lu"])
    @pytest.mark.parametrize("pol", POLICIES)
    def test_llc_accounting(self, results, wl, pol):
        llc = results[(wl, pol)].machine.llc
        assert llc.hits + llc.misses == llc.accesses
        assert 0.0 <= results[(wl, pol)].machine.llc_hit_ratio <= 1.0

    @pytest.mark.parametrize("wl", ["kmeans", "lu"])
    @pytest.mark.parametrize("pol", POLICIES)
    def test_distance_within_mesh_bounds(self, results, wl, pol):
        d = results[(wl, pol)].machine.mean_nuca_distance
        assert 0.0 <= d <= 6.0  # 4x4 mesh diameter


class TestPaperOrderings:
    def test_snuca_distance_near_theoretical(self, results):
        for wl in ("kmeans", "lu"):
            d = results[(wl, "snuca")].machine.mean_nuca_distance
            assert d == pytest.approx(2.5, abs=0.35)

    @pytest.mark.parametrize("wl", ["kmeans", "lu"])
    def test_tdnuca_reduces_distance(self, results, wl):
        assert (
            results[(wl, "tdnuca")].machine.mean_nuca_distance
            < results[(wl, "snuca")].machine.mean_nuca_distance
        )

    @pytest.mark.parametrize("wl", ["kmeans", "lu"])
    def test_tdnuca_reduces_data_movement(self, results, wl):
        assert (
            results[(wl, "tdnuca")].machine.router_bytes
            < results[(wl, "snuca")].machine.router_bytes
        )

    @pytest.mark.parametrize("wl", ["kmeans", "lu"])
    def test_tdnuca_cuts_llc_energy(self, results, wl):
        assert (
            results[(wl, "tdnuca")].machine.energy.llc
            <= results[(wl, "snuca")].machine.energy.llc * 1.05
        )

    def test_rnuca_llc_accesses_near_snuca(self, results):
        """Paper Fig. 9: R-NUCA within 2% of S-NUCA."""
        for wl in ("kmeans", "lu"):
            s = results[(wl, "snuca")].machine.llc_accesses
            r = results[(wl, "rnuca")].machine.llc_accesses
            assert abs(r - s) / s < 0.1


class TestSeedStability:
    def test_conclusion_stable_across_seeds(self):
        """TD-NUCA's win must not hinge on one scheduling realization."""
        for seed in (0, 1, 2):
            s = run_experiment("kmeans", "snuca", CFG, seed=seed)
            t = run_experiment("kmeans", "tdnuca", CFG, seed=seed)
            assert t.makespan < s.makespan * 1.01, seed
            assert t.machine.llc_accesses < s.machine.llc_accesses, seed

    def test_seeds_actually_differ(self):
        a = run_experiment("kmeans", "tdnuca", CFG, seed=0)
        b = run_experiment("kmeans", "tdnuca", CFG, seed=1)
        assert a.makespan != b.makespan  # fragmentation/jitter differ


class TestTLBClaims:
    @pytest.mark.parametrize("wl", ["kmeans", "lu"])
    def test_tdnuca_tlb_accesses_small(self, results, wl):
        """Section V-A: the translation walks of the TD-NUCA instructions
        add a negligible number of TLB accesses."""
        isa = results[(wl, "tdnuca")].isa
        l1 = results[(wl, "tdnuca")].machine.l1.accesses
        assert isa.translation_tlb_accesses < 0.25 * l1
