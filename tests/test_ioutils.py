"""atomic_write failure paths: missing dirs, denied fsync, racing writers."""

from __future__ import annotations

import os
import threading

import pytest

from repro.ioutils import atomic_write


class TestModeValidation:
    @pytest.mark.parametrize("mode", ["r", "rb", "a", "ab", "w+", "r+"])
    def test_non_write_modes_rejected(self, tmp_path, mode):
        with pytest.raises(ValueError, match="write mode"):
            with atomic_write(tmp_path / "f", mode):
                pass


class TestMissingTargetDirectory:
    def test_error_names_the_directory_and_file(self, tmp_path):
        target = tmp_path / "no" / "such" / "dir" / "out.json"
        with pytest.raises(FileNotFoundError) as exc:
            with atomic_write(target) as fh:
                fh.write("data")
        msg = str(exc.value)
        assert str(target.parent) in msg
        assert "out.json" in msg
        assert "create it first" in msg

    def test_nothing_is_created_on_failure(self, tmp_path):
        target = tmp_path / "ghost" / "out.json"
        with pytest.raises(FileNotFoundError):
            with atomic_write(target) as fh:
                fh.write("data")
        assert not target.parent.exists()
        assert list(tmp_path.iterdir()) == []


class TestDeniedFsync:
    def test_unreadable_parent_dir_fsync_is_survivable(
        self, tmp_path, monkeypatch
    ):
        # Some filesystems (and read-only parents) refuse to open a
        # directory for fsync; the write must still land — just without
        # rename durability.  Simulated via os.open because the test may
        # run as root, where chmod-based denial is a no-op.
        real_open = os.open

        def deny_dir_open(path, flags, *a, **kw):
            if path == str(tmp_path):
                raise PermissionError(13, "Permission denied", path)
            return real_open(path, flags, *a, **kw)

        monkeypatch.setattr(os, "open", deny_dir_open)
        target = tmp_path / "out.txt"
        with atomic_write(target) as fh:
            fh.write("survived")
        assert target.read_text() == "survived"

    def test_file_fsync_failure_propagates_and_cleans_up(
        self, tmp_path, monkeypatch
    ):
        # Unlike the best-effort directory fsync, a failed *data* fsync
        # means the content may not be durable — that must surface, and
        # the half-written temp file must not.
        real_fsync = os.fsync

        def failing_fsync(fd):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(os, "fsync", failing_fsync)
        target = tmp_path / "out.txt"
        target.write_text("previous")
        with pytest.raises(OSError, match="No space left"):
            with atomic_write(target) as fh:
                fh.write("new content")
        monkeypatch.setattr(os, "fsync", real_fsync)
        assert target.read_text() == "previous"  # old content intact
        assert not list(tmp_path.glob("*.tmp"))

    def test_fsync_false_skips_fsync_entirely(self, tmp_path, monkeypatch):
        def boom(fd):  # pragma: no cover - must never run
            raise AssertionError("fsync called despite fsync=False")

        monkeypatch.setattr(os, "fsync", boom)
        target = tmp_path / "out.txt"
        with atomic_write(target, fsync=False) as fh:
            fh.write("fast path")
        assert target.read_text() == "fast path"


class TestRacingWriters:
    def test_last_writer_wins_and_no_torn_file(self, tmp_path):
        target = tmp_path / "contested.txt"
        n_writers, n_rounds = 8, 10
        # Each writer repeatedly writes a payload that is self-describing
        # and long enough that interleaving would be visible.
        payloads = {
            i: (f"writer-{i}:" + str(i) * 4096 + ":end\n") for i in range(n_writers)
        }
        barrier = threading.Barrier(n_writers)
        errors: list[Exception] = []

        def write_loop(i: int) -> None:
            try:
                barrier.wait(timeout=10)
                for _ in range(n_rounds):
                    with atomic_write(target) as fh:
                        fh.write(payloads[i])
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=write_loop, args=(i,))
            for i in range(n_writers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        # The survivor is exactly one writer's complete payload...
        assert target.read_text() in payloads.values()
        # ...and no temporary droppings remain.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_concurrent_reader_never_sees_a_partial_file(self, tmp_path):
        target = tmp_path / "observed.txt"
        with atomic_write(target) as fh:
            fh.write("A" * 65536)
        stop = threading.Event()
        bad: list[str] = []

        def reader() -> None:
            while not stop.is_set():
                content = target.read_text()
                if content not in ("A" * 65536, "B" * 65536):
                    bad.append(content[:32])

        t = threading.Thread(target=reader)
        t.start()
        try:
            for _ in range(20):
                with atomic_write(target) as fh:
                    fh.write("B" * 65536)
                with atomic_write(target) as fh:
                    fh.write("A" * 65536)
        finally:
            stop.set()
            t.join(timeout=30)
        assert bad == []
