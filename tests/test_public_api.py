"""Public API stability: the names downstream users import must exist."""

import importlib

import pytest

PUBLIC_API = {
    "repro": [
        "Session",
        "RunResult",
        "SystemConfig",
        "paper_config",
        "scaled_config",
        "DepMode",
    ],
    "repro.api": ["Session", "RunResult"],
    "repro.obs": [
        "EventKind",
        "TraceEvent",
        "TraceSink",
        "EventTrace",
        "Observer",
        "IntervalSample",
        "IntervalTimeline",
        "chrome_trace_dict",
        "events_to_jsonl",
        "write_chrome_trace",
        "write_event_log",
    ],
    "repro.mem": ["AddressMap", "Region", "VirtualAllocator", "PageTable", "TLB"],
    "repro.noc": ["Mesh", "hops", "xy_route", "MessageClass", "TrafficStats"],
    "repro.cache": ["CacheBank", "L1Cache", "NucaLLC", "CoherenceDirectory"],
    "repro.nuca": ["NucaPolicy", "SNuca", "RNuca", "BYPASS", "PageClassifier"],
    "repro.core": [
        "RRT",
        "TdNucaISA",
        "RTCacheDirectory",
        "decide_placement",
        "TdNucaPolicy",
        "FlushCompletionRegister",
    ],
    "repro.runtime": [
        "Task",
        "Dependency",
        "Program",
        "TaskGraph",
        "Executor",
        "TdNucaRuntime",
        "OrderedScheduler",
    ],
    "repro.sim": ["Machine", "build_machine", "MemoryControllers"],
    "repro.faults": [
        "FaultSchedule",
        "FaultInjector",
        "FaultStats",
        "InvariantChecker",
        "parse_fault_spec",
        "check_machine",
    ],
    "repro.energy": ["EnergyTally", "EnergyBreakdown"],
    "repro.stats": [
        "BlockCensus",
        "format_table",
        "timeline_bank_heatmap",
        "timeline_link_heatmap",
    ],
    "repro.workloads": ["Workload", "get_workload", "BENCHMARKS"],
    "repro.experiments": ["run_experiment", "run_suite", "figures", "paper"],
}


@pytest.mark.parametrize("module,names", PUBLIC_API.items())
def test_exports_exist(module, names):
    mod = importlib.import_module(module)
    for name in names:
        assert hasattr(mod, name), f"{module}.{name} missing"


@pytest.mark.parametrize("module", list(PUBLIC_API))
def test_all_is_importable(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.__all__ lists missing {name}"


def test_every_public_module_has_docstring():
    import pathlib

    root = pathlib.Path("src/repro")
    for path in root.rglob("*.py"):
        source = path.read_text()
        if path.name == "__main__.py":
            continue
        mod_doc = source.lstrip().startswith(('"""', "'''"))
        assert mod_doc, f"{path} lacks a module docstring"
