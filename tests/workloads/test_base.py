"""Workload infrastructure: BlockedGrid, init phases, scaling."""

import pytest

from repro.config import scaled_config
from repro.deps import DepMode
from repro.mem.allocator import VirtualAllocator
from repro.mem.region import Region
from repro.runtime.task import Dependency, Program, Task
from repro.workloads.base import BlockedGrid, add_init_phase, round_up
from repro.workloads.registry import get_workload


class TestRoundUp:
    def test_rounds(self):
        assert round_up(100, 64) == 128
        assert round_up(128, 64) == 128
        assert round_up(1, 64) == 64
        assert round_up(0, 64) == 64

    def test_bad_multiple(self):
        with pytest.raises(ValueError):
            round_up(10, 0)


class TestBlockedGrid:
    def make(self, nx=3, ny=2, cell=1024, edge=64):
        return BlockedGrid(VirtualAllocator(), "g", nx, ny, cell, edge, 64)

    def test_cell_layout(self):
        grid = self.make()
        cell = grid.cell(0, 0)
        # N, S, W, E edges then interior, contiguous.
        assert cell.north.end == cell.south.start
        assert cell.south.end == cell.west.start
        assert cell.west.end == cell.east.start
        assert cell.east.end == cell.interior.start
        assert cell.whole.size == grid.cell_bytes

    def test_cells_disjoint(self):
        grid = self.make()
        a, b = grid.cell(0, 0).whole, grid.cell(1, 0).whole
        assert not a.overlaps(b)

    def test_edges_block_aligned(self):
        grid = self.make(edge=50)  # rounded up to 64
        assert grid.edge_bytes == 64
        assert grid.cell(0, 0).north.size == 64

    def test_cell_holds_edges(self):
        # Tiny cell is grown to fit 4 edges + interior.
        grid = self.make(cell=128, edge=64)
        assert grid.cell_bytes >= 5 * 64

    def test_neighbor_edges_corner(self):
        grid = self.make()
        halo = grid.neighbor_edges(0, 0)
        # Corner cell: only east and south neighbours.
        assert len(halo) == 2
        assert grid.cell(1, 0).west in halo
        assert grid.cell(0, 1).north in halo

    def test_neighbor_edges_interior(self):
        grid = self.make(nx=3, ny=3)
        halo = grid.neighbor_edges(1, 1)
        assert len(halo) == 4
        assert grid.cell(1, 0).south in halo
        assert grid.cell(1, 2).north in halo
        assert grid.cell(0, 1).east in halo
        assert grid.cell(2, 1).west in halo

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            self.make().cell(3, 0)

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            BlockedGrid(VirtualAllocator(), "g", 0, 2, 1024, 64, 64)

    def test_total_bytes(self):
        grid = self.make(nx=3, ny=2, cell=1024)
        assert grid.total_bytes == 6 * 1024


class TestAddInitPhase:
    def regions(self, n):
        alloc = VirtualAllocator()
        return [alloc.allocate(512, f"r{i}") for i in range(n)]

    def test_prepends_warmup_phase(self):
        prog = Program("p")
        prog.new_phase().append(
            Task("t", (Dependency(Region(0x90000, 64), DepMode.IN),))
        )
        add_init_phase(prog, self.regions(8), 4)
        assert prog.warmup_phases == 1
        assert len(prog.phases) == 2
        assert all(t.name.startswith("init") for t in prog.phases[0])

    def test_all_regions_covered_once(self):
        prog = Program("p")
        regions = self.regions(10)
        add_init_phase(prog, regions, 3)
        written = [d.region for t in prog.phases[0] for d in t.deps]
        assert sorted(r.start for r in written) == sorted(r.start for r in regions)
        assert all(d.mode is DepMode.OUT for t in prog.phases[0] for d in t.deps)

    def test_task_count_capped_by_regions(self):
        prog = Program("p")
        add_init_phase(prog, self.regions(2), 16)
        assert len(prog.phases[0]) == 2


class TestScaledInput:
    def test_scales_with_capacity(self):
        wl = get_workload("md5")
        big = wl.scaled_input_bytes(scaled_config(1 / 64))
        small = wl.scaled_input_bytes(scaled_config(1 / 256))
        assert big == pytest.approx(4 * small, rel=0.01)

    def test_floor_at_one_block(self):
        wl = get_workload("md5")
        cfg = scaled_config(1 / 4096)
        assert wl.scaled_input_bytes(cfg) >= cfg.block_bytes
