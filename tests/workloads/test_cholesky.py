"""The Fig.-2 Cholesky bonus workload."""

import pytest

from repro.config import scaled_config
from repro.deps import DepMode
from repro.runtime.tdg import TaskGraph
from repro.workloads.registry import BENCHMARKS, get_workload, workload_names

CFG = scaled_config(1 / 512)


@pytest.fixture(scope="module")
def program():
    return get_workload("cholesky").build(CFG)


class TestRegistry:
    def test_not_in_table_ii_suite(self):
        assert "cholesky" not in BENCHMARKS
        assert "cholesky" not in workload_names()
        assert "cholesky" in workload_names(include_extra=True)

    def test_lookup_works(self):
        assert get_workload("Cholesky").name == "cholesky"


class TestStructure:
    def test_task_counts(self, program):
        B = 15
        names = [t.name.split("[")[0] for t in program.tasks]
        assert names.count("potrf") == B
        assert names.count("trsm") == B * (B - 1) // 2
        assert names.count("syrk") == B * (B - 1) // 2
        assert names.count("gemm") == B * (B - 1) * (B - 2) // 6

    def test_fig2_dependency_chain(self, program):
        """potrf(0) gates every trsm(0, i), which gate the syrk/gemm of
        step 0 — the paper's Fig.-2 shape."""
        main = [t for ph in program.phases[program.warmup_phases :] for t in ph]
        g = TaskGraph()
        for t in main:
            g.add_task(t)
        potrf0 = next(t for t in main if t.name == "potrf[0]")
        succ_names = {t.name.split("[")[0] for t in g.successors_of(potrf0)}
        assert succ_names == {"trsm"}
        trsm01 = next(t for t in main if t.name == "trsm[0,1]")
        succ = {t.name.split("[")[0] for t in g.successors_of(trsm01)}
        assert "syrk" in succ

    def test_lower_triangle_only(self, program):
        """Dependencies only touch the lower-triangular blocks."""
        regions = {d.region.start for t in program.tasks for d in t.deps}
        # 120 blocks for B=15.
        assert len(regions) == 15 * 16 // 2

    def test_drains(self, program):
        for phase in program.phases:
            g = TaskGraph()
            for t in phase:
                g.add_task(t)
            ready = list(g.initial_ready())
            done = 0
            while ready:
                done += 1
                ready.extend(g.mark_finished(ready.pop()))
            assert done == len(phase)

    def test_runs_end_to_end(self):
        from repro.experiments.runner import build_runtime
        from repro.runtime import Executor
        from repro.sim.machine import build_machine

        machine = build_machine(CFG, "tdnuca")
        ext = build_runtime(machine, "tdnuca")
        prog = get_workload("cholesky").build(CFG)
        stats = Executor(machine, extension=ext).run(prog)
        assert stats.tasks_executed == prog.num_tasks

    def test_inout_modes(self, program):
        potrf = next(t for t in program.tasks if t.name.startswith("potrf"))
        assert potrf.deps[0].mode is DepMode.INOUT
