"""Structural invariants of the eight Table-II benchmark generators."""

import pytest

from repro.config import scaled_config
from repro.deps import DepMode
from repro.runtime.tdg import TaskGraph
from repro.workloads.registry import BENCHMARKS, get_workload, workload_names

CFG = scaled_config(1 / 256)


@pytest.fixture(scope="module")
def programs():
    return {name: cls().build(CFG) for name, cls in BENCHMARKS.items()}


class TestRegistry:
    def test_table_ii_order(self):
        assert workload_names() == [
            "gauss", "histo", "jacobi", "kmeans", "knn", "lu", "md5", "redblack",
        ]

    def test_lookup_case_insensitive(self):
        assert get_workload("MD5").name == "md5"

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_workload("nbody")

    def test_paper_metadata_matches_table_ii(self):
        rows = {
            "gauss": (488.04, 3200, 294),
            "histo": (478.75, 1800, 528),
            "jacobi": (264.34, 320, 4112),
            "kmeans": (314.37, 228, 1404),
            "knn": (85.01, 448, 318),
            "lu": (73.45, 1188, 318),
            "md5": (513.39, 128, 4096),
            "redblack": (223.96, 320, 3549),
        }
        for name, (mb, tasks, kb) in rows.items():
            paper = get_workload(name).paper
            assert paper.input_mb == pytest.approx(mb)
            assert paper.num_tasks == tasks
            assert paper.avg_task_kb == pytest.approx(kb)


class TestCommonInvariants:
    @pytest.mark.parametrize("name", list(BENCHMARKS))
    def test_task_count_close_to_table_ii(self, programs, name):
        prog = programs[name]
        paper = get_workload(name).paper.num_tasks
        main_tasks = sum(len(ph) for ph in prog.phases[prog.warmup_phases :])
        assert abs(main_tasks - paper) / paper < 0.07

    @pytest.mark.parametrize("name", list(BENCHMARKS))
    def test_every_task_has_deps(self, programs, name):
        for t in programs[name].tasks:
            assert t.deps

    @pytest.mark.parametrize("name", list(BENCHMARKS))
    def test_footprint_scales_with_input(self, programs, name):
        wl = get_workload(name)
        footprint = programs[name].total_footprint_bytes()
        expected = wl.scaled_input_bytes(CFG)
        assert 0.5 * expected < footprint < 2.5 * expected

    @pytest.mark.parametrize("name", list(BENCHMARKS))
    def test_deps_do_not_alias_other_structures(self, programs, name):
        """in/out region pairs of one task never partially overlap."""
        for t in programs[name].tasks:
            regs = t.dep_regions()
            for i, a in enumerate(regs):
                for b in regs[i + 1 :]:
                    if a.overlaps(b):
                        assert a == b or a.contains_region(b) or b.contains_region(a)

    @pytest.mark.parametrize("name", list(BENCHMARKS))
    def test_builds_at_multiple_scales(self, name):
        for scale in (1 / 64, 1 / 1024):
            prog = get_workload(name).build(scaled_config(scale))
            assert prog.num_tasks > 0

    @pytest.mark.parametrize("name", list(BENCHMARKS))
    def test_tdg_acyclic_and_complete(self, programs, name):
        """Every phase drains: topological order exists (no deadlock)."""
        prog = programs[name]
        for phase in prog.phases:
            g = TaskGraph(get_workload(name).tdg_overlap)
            for t in phase:
                g.add_task(t)
            ready = list(g.initial_ready())
            done = 0
            while ready:
                t = ready.pop()
                done += 1
                ready.extend(g.mark_finished(t))
            assert done == len(phase)


class TestMD5:
    def test_fully_independent(self, programs):
        prog = programs["md5"]
        g = TaskGraph()
        for t in prog.tasks:
            g.add_task(t)
        assert g.edges == 0

    def test_no_warmup(self, programs):
        assert programs["md5"].warmup_phases == 0

    def test_streaming_structure(self, programs):
        for t in programs["md5"].tasks:
            modes = sorted(d.mode.value for d in t.deps)
            assert modes == ["in", "out"]


class TestStencils:
    def test_gauss_two_iterations(self, programs):
        prog = programs["gauss"]
        assert len(prog.phases) - prog.warmup_phases == 2

    def test_jacobi_five_iterations(self, programs):
        prog = programs["jacobi"]
        assert len(prog.phases) - prog.warmup_phases == 5

    def test_redblack_ten_half_sweeps(self, programs):
        prog = programs["redblack"]
        assert len(prog.phases) - prog.warmup_phases == 10

    def test_jacobi_ping_pong(self, programs):
        """Sources of iteration k+1 are the destinations of iteration k."""
        prog = programs["jacobi"]
        phases = prog.phases[prog.warmup_phases :]
        outs0 = {d.region.start for t in phases[0] for d in t.deps if d.mode.writes}
        ins1 = {d.region.start for t in phases[1] for d in t.deps if d.mode.reads}
        assert outs0 <= ins1

    def test_gauss_has_inout_interiors_and_halo_reads(self, programs):
        prog = programs["gauss"]
        t = prog.phases[prog.warmup_phases][5]  # an interior-ish cell
        modes = [d.mode for d in t.deps]
        assert DepMode.INOUT in modes
        assert DepMode.IN in modes


class TestSharedReadData:
    def test_kmeans_centroids_shared_by_all_maps(self, programs):
        prog = programs["kmeans"]
        main = prog.phases[prog.warmup_phases :]
        maps = [t for ph in main for t in ph if t.name.startswith("assign")]
        first_in = {d.region.start for d in maps[0].deps if d.mode is DepMode.IN}
        for t in maps[1:]:
            ins = {d.region.start for d in t.deps if d.mode is DepMode.IN}
            assert first_in & ins  # the centroid region

    def test_knn_training_shared(self, programs):
        prog = programs["knn"]
        dist_tasks = [t for t in prog.tasks if t.name.startswith("dist")]
        training_starts = set.intersection(
            *({d.region.start for d in t.deps if d.mode is DepMode.IN} for t in dist_tasks)
        )
        assert len(training_starts) == 1

    def test_lu_panel_reuse(self, programs):
        """Each gemm reads two panels that other gemms of the same step
        also read — the replication driver."""
        prog = programs["lu"]
        gemms = [t for t in prog.tasks if t.name.startswith("gemm[0,")]
        assert len(gemms) == 14 * 14
        panel_reads = {}
        for t in gemms:
            for d in t.deps:
                if d.mode is DepMode.IN:
                    panel_reads.setdefault(d.region.start, 0)
                    panel_reads[d.region.start] += 1
        assert max(panel_reads.values()) == 14

    def test_lu_task_breakdown(self, programs):
        prog = programs["lu"]
        names = [t.name.split("[")[0] for t in prog.tasks if not t.name.startswith("init")]
        assert names.count("diag") == 15
        assert names.count("trsm_col") == 105
        assert names.count("trsm_row") == 105
        assert names.count("gemm") == 1015


class TestHisto:
    def test_pipeline_pairs(self, programs):
        prog = programs["histo"]
        main = [t for ph in prog.phases[prog.warmup_phases :] for t in ph]
        scans = [t for t in main if t.name.startswith("scan")]
        procs = [t for t in main if t.name.startswith("process")]
        assert len(scans) == len(procs) == 900

    def test_chunks_read_then_rewritten(self, programs):
        """Image chunks appear as IN of a scan and INOUT of a process."""
        prog = programs["histo"]
        main = [t for ph in prog.phases[prog.warmup_phases :] for t in ph]
        scan0 = next(t for t in main if t.name == "scan[0]")
        proc0 = next(t for t in main if t.name == "process[0]")
        chunk = next(d.region for d in scan0.deps if d.mode is DepMode.IN)
        assert any(
            d.region == chunk and d.mode is DepMode.INOUT for d in proc0.deps
        )

    def test_reduction_uses_array_sections(self, programs):
        prog = programs["histo"]
        reduces = [t for t in prog.tasks if t.name.startswith("reduce[")]
        for t in reduces:
            assert len(t.deps) == 2  # one section in, one partial out
